//! The probabilistic transition function of the selfish-mining MDP
//! (Section 3.2, "Transition Function") together with the block-finalization
//! accounting that drives the reward functions of Section 3.3.
//!
//! # Modelling conventions
//!
//! The reproduction uses the *pre-incorporation* convention for honest blocks
//! (see [`crate::Phase`]): in a [`Phase::HonestFound`] state the freshly found
//! honest block is pending and the depth indexing of `C` and `O` still refers
//! to the accepted public chain without it. A `release(i, j, k)` therefore
//! competes against the accepted chain *plus the pending block*:
//!
//! * `k > i` — the published fork is strictly longer; honest miners switch
//!   with probability 1.
//! * `k = i` — the published fork ties with the public chain including the
//!   pending block; a race happens and honest miners switch with the
//!   switching probability `γ`.
//! * `k < i` — the fork is shorter; the action is dominated and not offered.
//!
//! In a [`Phase::AdversaryFound`] state there is no pending honest block, so a
//! release needs `k ≥ i` (strictly longer than the `i − 1` blocks it orphans)
//! and is accepted with probability 1, as in the paper.
//!
//! A block is *final* once it sits at depth ≥ `d` of the accepted chain: no
//! private fork (which is rooted at depth ≤ `d` and therefore orphans accepted
//! blocks at depths ≤ `d − 1` only) can ever remove it. The reward functions
//! `r_A` / `r_H` count adversarial / honest blocks at the moment they cross
//! that boundary, which matches the paper's "accepted at depth greater than
//! `d`" accounting up to a constant shift of one step that does not affect any
//! long-run average.

use crate::{AttackParams, Owner, Phase, SelfishMiningError, SmAction, SmState};

/// Blocks finalized by one MDP transition, split by owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockRewards {
    /// Number of adversary-owned blocks that became final.
    pub adversary: u32,
    /// Number of honest-owned blocks that became final.
    pub honest: u32,
}

impl BlockRewards {
    /// No blocks finalized.
    pub const ZERO: BlockRewards = BlockRewards {
        adversary: 0,
        honest: 0,
    };
}

/// A single probabilistic outcome of applying an action in a state.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Successor state.
    pub state: SmState,
    /// Probability of this outcome (outcomes of one action sum to 1).
    pub probability: f64,
    /// Blocks finalized on this outcome.
    pub rewards: BlockRewards,
}

/// The set of actions available in `state` (the paper's `A(s)`).
///
/// Dominated releases (forks strictly shorter than the public chain they
/// compete against) are not offered; removing them does not change the optimal
/// expected relative revenue and keeps the MDP smaller.
pub fn available_actions(params: &AttackParams, state: &SmState) -> Vec<SmAction> {
    let mut actions = vec![SmAction::Mine];
    if state.phase == Phase::Mining {
        return actions;
    }
    for depth in 1..=params.depth {
        for fork in 1..=params.forks_per_block {
            let fork_len = state.fork_length(params, depth, fork) as usize;
            // Minimal useful release length: ties are only possible against a
            // pending honest block.
            let min_len = depth;
            for length in min_len..=fork_len {
                // In an AdversaryFound state a tie cannot be won (the paper's
                // "race cannot happen" case), so `length == depth` is only
                // offered when an honest block is pending... except that for
                // AdversaryFound the tie would be against the accepted chain
                // of the same height, where `length == depth` already means
                // strictly longer by one (no pending block), so it stays.
                actions.push(SmAction::Release {
                    depth,
                    fork,
                    length,
                });
            }
        }
    }
    actions
}

/// Applies `action` in `state` and returns all probabilistic outcomes.
///
/// # Errors
///
/// Returns [`SelfishMiningError::UnavailableAction`] if the action is not
/// available in the state (e.g. a release in a `Mining`-phase state or a
/// release longer than the fork).
pub fn successors(
    params: &AttackParams,
    state: &SmState,
    action: &SmAction,
) -> Result<Vec<Outcome>, SelfishMiningError> {
    match (state.phase, action) {
        (Phase::Mining, SmAction::Mine) => Ok(mining_outcomes(params, state)),
        (Phase::Mining, SmAction::Release { .. }) => Err(unavailable(state, action)),
        (Phase::AdversaryFound, SmAction::Mine) => {
            let mut next = state.clone();
            next.phase = Phase::Mining;
            Ok(vec![Outcome {
                state: next,
                probability: 1.0,
                rewards: BlockRewards::ZERO,
            }])
        }
        (Phase::HonestFound, SmAction::Mine) => {
            let (next, rewards) = incorporate_pending_honest_block(params, state);
            Ok(vec![Outcome {
                state: next,
                probability: 1.0,
                rewards,
            }])
        }
        (
            phase,
            SmAction::Release {
                depth,
                fork,
                length,
            },
        ) => release_outcomes(params, state, phase, *depth, *fork, *length),
    }
}

fn unavailable(state: &SmState, action: &SmAction) -> SelfishMiningError {
    SelfishMiningError::UnavailableAction {
        state: state.to_string(),
        action: action.to_string(),
    }
}

/// Outcomes of the `mine` action in a `Mining`-phase state: nature decides who
/// finds the next proof.
fn mining_outcomes(params: &AttackParams, state: &SmState) -> Vec<Outcome> {
    let p = params.p;
    let sigma = state.mining_slots(params) as f64;
    let denominator = (1.0 - p) + p * sigma;
    let mut outcomes = Vec::new();

    if denominator <= 0.0 {
        // p = 0 and no honest resource cannot happen (p ∈ [0,1]); the only
        // degenerate case is p = 1 with no mining slots, which cannot occur
        // because every depth always offers at least one slot. Defensive
        // fallback: stay in place.
        return vec![Outcome {
            state: state.clone(),
            probability: 1.0,
            rewards: BlockRewards::ZERO,
        }];
    }

    let adversary_share = p / denominator;
    if adversary_share > 0.0 {
        for depth in 1..=params.depth {
            // Extend every non-empty fork.
            for fork in 1..=params.forks_per_block {
                let len = state.fork_length(params, depth, fork);
                if len == 0 {
                    continue;
                }
                let mut next = state.clone();
                *next.fork_length_mut(params, depth, fork) =
                    len.saturating_add(1).min(params.max_fork_length as u8);
                next.phase = Phase::AdversaryFound;
                outcomes.push(Outcome {
                    state: next,
                    probability: adversary_share,
                    rewards: BlockRewards::ZERO,
                });
            }
            // Start one new fork in the lowest-index empty slot, if any.
            if let Some(fork) = state.first_empty_fork(params, depth) {
                let mut next = state.clone();
                *next.fork_length_mut(params, depth, fork) = 1;
                next.phase = Phase::AdversaryFound;
                outcomes.push(Outcome {
                    state: next,
                    probability: adversary_share,
                    rewards: BlockRewards::ZERO,
                });
            }
        }
    }

    let honest_share = (1.0 - p) / denominator;
    if honest_share > 0.0 {
        let mut next = state.clone();
        next.phase = Phase::HonestFound;
        outcomes.push(Outcome {
            state: next,
            probability: honest_share,
            rewards: BlockRewards::ZERO,
        });
    }
    outcomes
}

/// Incorporates the pending honest block into the accepted chain: depth
/// indices shift by one, forks rooted beyond depth `d` are abandoned, and the
/// block pushed past the finality boundary is rewarded.
fn incorporate_pending_honest_block(
    params: &AttackParams,
    state: &SmState,
) -> (SmState, BlockRewards) {
    let d = params.depth;
    let f = params.forks_per_block;
    let mut rewards = BlockRewards::ZERO;

    // Finalization: the block leaving the tracked window becomes final. For
    // d = 1 the pending honest block itself lands at depth d and is final
    // immediately.
    if d == 1 {
        rewards.honest += 1;
    } else {
        match state.owners[d - 2] {
            Owner::Honest => rewards.honest += 1,
            Owner::Adversary => rewards.adversary += 1,
        }
    }

    // Shift owners: the pending honest block enters at depth 1.
    let mut owners = Vec::with_capacity(d.saturating_sub(1));
    if d >= 2 {
        owners.push(Owner::Honest);
        owners.extend_from_slice(&state.owners[..d - 2]);
    }

    // Shift forks: fresh empty row at depth 1, previous rows move one deeper,
    // the row previously at depth d is dropped.
    let mut forks = vec![0u8; d * f];
    for depth in 2..=d {
        let src = (depth - 2) * f;
        let dst = (depth - 1) * f;
        forks[dst..dst + f].copy_from_slice(&state.forks[src..src + f]);
    }

    (
        SmState {
            forks,
            owners,
            phase: Phase::Mining,
        },
        rewards,
    )
}

/// Outcomes of a `release(i, j, k)` action.
fn release_outcomes(
    params: &AttackParams,
    state: &SmState,
    phase: Phase,
    depth: usize,
    fork: usize,
    length: usize,
) -> Result<Vec<Outcome>, SelfishMiningError> {
    let action = SmAction::Release {
        depth,
        fork,
        length,
    };
    if phase == Phase::Mining
        || depth == 0
        || depth > params.depth
        || fork == 0
        || fork > params.forks_per_block
        || length == 0
        || length > state.fork_length(params, depth, fork) as usize
        || length < depth
    {
        return Err(unavailable(state, &action));
    }

    let (accepted, accept_rewards) = accept_release(params, state, depth, fork, length);

    match phase {
        Phase::AdversaryFound => {
            // No pending honest block: `length ≥ depth` means the published
            // chain is strictly longer than the public one, so it is adopted
            // with probability 1.
            Ok(vec![Outcome {
                state: accepted,
                probability: 1.0,
                rewards: accept_rewards,
            }])
        }
        Phase::HonestFound => {
            if length > depth {
                // Strictly longer than the public chain including the pending
                // honest block: adopted with probability 1, the pending block
                // is orphaned.
                return Ok(vec![Outcome {
                    state: accepted,
                    probability: 1.0,
                    rewards: accept_rewards,
                }]);
            }
            // Tie (`length == depth`): a race decided by the switching
            // probability γ. On rejection the pending honest block is
            // incorporated and the adversary keeps its (shifted) forks.
            let gamma = params.gamma;
            let mut outcomes = Vec::with_capacity(2);
            if gamma > 0.0 {
                outcomes.push(Outcome {
                    state: accepted,
                    probability: gamma,
                    rewards: accept_rewards,
                });
            }
            if gamma < 1.0 {
                let (rejected, reject_rewards) = incorporate_pending_honest_block(params, state);
                outcomes.push(Outcome {
                    state: rejected,
                    probability: 1.0 - gamma,
                    rewards: reject_rewards,
                });
            }
            Ok(outcomes)
        }
        Phase::Mining => unreachable!("handled above"),
    }
}

/// Applies an accepted release of the first `length` blocks of fork
/// `(depth, fork)`: the accepted chain loses its top `depth − 1` blocks,
/// gains `length` adversary blocks, forks re-anchor to their (possibly
/// deeper) root positions, and every block crossing the finality boundary is
/// rewarded.
fn accept_release(
    params: &AttackParams,
    state: &SmState,
    depth: usize,
    fork: usize,
    length: usize,
) -> (SmState, BlockRewards) {
    let d = params.depth;
    let f = params.forks_per_block;
    // Net growth of the accepted chain.
    let delta = length - (depth - 1);
    let mut rewards = BlockRewards::ZERO;

    // Newly published adversary blocks that are already final (new depth ≥ d):
    // the published blocks occupy new depths 1..=length.
    if length >= d {
        rewards.adversary += (length - d + 1) as u32;
    }
    // Previously accepted blocks pushed past the finality boundary: old depth
    // m ∈ [depth, d−1] with new depth m + delta ≥ d.
    if d >= 2 {
        let lowest_finalized = d.saturating_sub(delta).max(depth);
        for m in lowest_finalized..=(d - 1) {
            match state.owners[m - 1] {
                Owner::Honest => rewards.honest += 1,
                Owner::Adversary => rewards.adversary += 1,
            }
        }
    }

    // New owner vector.
    let mut owners = vec![Owner::Adversary; d.saturating_sub(1)];
    for (idx, owner) in owners.iter_mut().enumerate() {
        let q = idx + 1; // new depth
        if q <= length {
            *owner = Owner::Adversary;
        } else {
            // Old block at depth q − delta (guaranteed ≥ `depth` and ≤ d − 2).
            let m = q - delta;
            *owner = state.owners[m - 1];
        }
    }

    // New fork matrix.
    let mut forks = vec![0u8; d * f];
    // Remainder of the released fork re-anchors on the new tip.
    let remainder = state.fork_length(params, depth, fork) as usize - length;
    forks[0] = remainder as u8;
    // Forks rooted at surviving old blocks move `delta` deeper.
    for old_depth in depth..=d {
        let new_depth = old_depth + delta;
        if new_depth > d {
            break;
        }
        let src = (old_depth - 1) * f;
        let dst = (new_depth - 1) * f;
        forks[dst..dst + f].copy_from_slice(&state.forks[src..src + f]);
        if old_depth == depth {
            // The released fork's slot restarts empty at its root's new depth.
            forks[dst + (fork - 1)] = 0;
        }
    }

    (
        SmState {
            forks,
            owners,
            phase: Phase::Mining,
        },
        rewards,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: f64, gamma: f64, d: usize, f: usize, l: usize) -> AttackParams {
        AttackParams::new(p, gamma, d, f, l).unwrap()
    }

    fn probabilities_sum_to_one(outcomes: &[Outcome]) {
        let sum: f64 = outcomes.iter().map(|o| o.probability).sum();
        assert!((sum - 1.0).abs() < 1e-12, "probabilities sum to {sum}");
    }

    #[test]
    fn mining_state_offers_only_mine() {
        let p = params(0.3, 0.5, 2, 2, 4);
        let s = SmState::initial(&p);
        assert_eq!(available_actions(&p, &s), vec![SmAction::Mine]);
    }

    #[test]
    fn mining_outcomes_split_between_parties() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let s = SmState::initial(&p);
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        // Two depths with empty slots + one honest outcome.
        assert_eq!(outs.len(), 3);
        probabilities_sum_to_one(&outs);
        // σ = 2, so each adversarial outcome has probability p / (1 − p + 2p).
        let expected = 0.3 / (0.7 + 0.6);
        assert!(outs
            .iter()
            .filter(|o| o.state.phase == Phase::AdversaryFound)
            .all(|o| (o.probability - expected).abs() < 1e-12));
        let honest = outs
            .iter()
            .find(|o| o.state.phase == Phase::HonestFound)
            .unwrap();
        assert!((honest.probability - 0.7 / 1.3).abs() < 1e-12);
        // The adversarial outcomes start forks of length 1.
        assert!(outs
            .iter()
            .filter(|o| o.state.phase == Phase::AdversaryFound)
            .all(|o| o.state.total_private_blocks() == 1));
    }

    #[test]
    fn fork_length_is_capped_at_l() {
        let p = params(0.5, 0.5, 1, 1, 2);
        let mut s = SmState::initial(&p);
        *s.fork_length_mut(&p, 1, 1) = 2;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        probabilities_sum_to_one(&outs);
        for o in &outs {
            assert!(o.state.fork_length(&p, 1, 1) <= 2);
        }
    }

    #[test]
    fn honest_mine_action_finalizes_deepest_tracked_block() {
        let p = params(0.3, 0.5, 3, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        s.owners = vec![Owner::Adversary, Owner::Adversary];
        *s.fork_length_mut(&p, 1, 1) = 2;
        *s.fork_length_mut(&p, 3, 1) = 1;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        assert_eq!(outs.len(), 1);
        let out = &outs[0];
        // The block at depth d−1 = 2 (adversary) crossed the boundary.
        assert_eq!(
            out.rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
        // Owners shifted with the new honest block on top.
        assert_eq!(out.state.owners, vec![Owner::Honest, Owner::Adversary]);
        // Forks shifted one deeper; the fork at depth 3 fell off.
        assert_eq!(out.state.fork_length(&p, 1, 1), 0);
        assert_eq!(out.state.fork_length(&p, 2, 1), 2);
        assert_eq!(out.state.fork_length(&p, 3, 1), 0);
        assert_eq!(out.state.phase, Phase::Mining);
    }

    #[test]
    fn honest_mine_action_with_depth_one_finalizes_the_pending_block() {
        let p = params(0.3, 0.5, 1, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        *s.fork_length_mut(&p, 1, 1) = 1;
        let outs = successors(&p, &s, &SmAction::Mine).unwrap();
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 0,
                honest: 1
            }
        );
        // The withheld fork is abandoned (its root moved beyond the window).
        assert_eq!(outs[0].state.total_private_blocks(), 0);
    }

    #[test]
    fn tie_release_races_with_switching_probability() {
        // Classic SM1 race at d = 1: one withheld block vs the pending honest
        // block.
        let p = params(0.3, 0.25, 1, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        *s.fork_length_mut(&p, 1, 1) = 1;
        let action = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1,
        };
        assert!(available_actions(&p, &s).contains(&action));
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 2);
        probabilities_sum_to_one(&outs);
        let accept = outs.iter().find(|o| o.probability == 0.25).unwrap();
        let reject = outs.iter().find(|o| o.probability == 0.75).unwrap();
        // Accepted: the adversary block is final (d = 1), honest pending block orphaned.
        assert_eq!(
            accept.rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
        // Rejected: the pending honest block is final.
        assert_eq!(
            reject.rewards,
            BlockRewards {
                adversary: 0,
                honest: 1
            }
        );
    }

    #[test]
    fn strictly_longer_release_is_always_accepted() {
        let p = params(0.3, 0.0, 2, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::HonestFound;
        s.owners = vec![Owner::Honest];
        *s.fork_length_mut(&p, 2, 1) = 3;
        // Fork rooted at depth 2, releasing 3 > depth blocks: orphans the
        // block at depth 1 and the pending honest block, even though γ = 0.
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 3,
        };
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].probability, 1.0);
        // delta = 3 − 1 = 2. New adversary blocks at depths 1..3: those at
        // depth ≥ 2 are final → 2 adversary blocks. The orphaned honest block
        // at old depth 1 is never rewarded.
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 2,
                honest: 0
            }
        );
        // The new tracked owner (depth 1) is the adversary.
        assert_eq!(outs[0].state.owners, vec![Owner::Adversary]);
        assert_eq!(outs[0].state.phase, Phase::Mining);
    }

    #[test]
    fn adversary_found_release_needs_strictly_longer_fork() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        *s.fork_length_mut(&p, 2, 1) = 1;
        // length 1 < depth 2: dominated, not available.
        let actions = available_actions(&p, &s);
        assert!(!actions.contains(&SmAction::Release {
            depth: 2,
            fork: 1,
            length: 1
        }));
        // With a length-2 fork the release becomes available and wins surely.
        *s.fork_length_mut(&p, 2, 1) = 2;
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 2,
        };
        assert!(available_actions(&p, &s).contains(&action));
        let outs = successors(&p, &s, &action).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].probability, 1.0);
    }

    #[test]
    fn release_remainder_reanchors_on_new_tip() {
        let p = params(0.3, 0.5, 2, 2, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        s.owners = vec![Owner::Honest];
        *s.fork_length_mut(&p, 1, 1) = 4;
        *s.fork_length_mut(&p, 1, 2) = 2;
        // Release 2 of the 4 blocks of fork (1,1): the remaining 2 blocks
        // re-anchor as a fork on the new tip.
        let action = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 2,
        };
        let outs = successors(&p, &s, &action).unwrap();
        let next = &outs[0].state;
        assert_eq!(next.fork_length(&p, 1, 1), 2, "remainder fork");
        // delta = 2: the old depth-1 root would move to depth 3 > d, so the
        // sibling fork (1,2) is abandoned.
        assert_eq!(next.fork_length(&p, 2, 1), 0);
        assert_eq!(next.fork_length(&p, 2, 2), 0);
        // The new tracked block (depth 1) is an adversary block. Final blocks:
        // one released adversary block lands at depth ≥ d = 2, and the old
        // honest tip (the fork's root) is pushed to depth 3 ≥ d.
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 1,
                honest: 1
            }
        );
        assert_eq!(next.owners, vec![Owner::Adversary]);
    }

    #[test]
    fn release_with_unit_growth_keeps_sibling_forks() {
        let p = params(0.3, 0.5, 3, 2, 4);
        let mut s = SmState::initial(&p);
        s.phase = Phase::AdversaryFound;
        s.owners = vec![Owner::Honest, Owner::Adversary];
        *s.fork_length_mut(&p, 2, 1) = 2;
        *s.fork_length_mut(&p, 2, 2) = 1;
        *s.fork_length_mut(&p, 3, 1) = 1;
        // Release both blocks of fork (2,1): delta = 1.
        let action = SmAction::Release {
            depth: 2,
            fork: 1,
            length: 2,
        };
        let outs = successors(&p, &s, &action).unwrap();
        let next = &outs[0].state;
        // Old depth-2 root moves to depth 3: sibling fork (2,2) survives there,
        // and the released slot restarts empty.
        assert_eq!(next.fork_length(&p, 3, 1), 0);
        assert_eq!(next.fork_length(&p, 3, 2), 1);
        // Old depth-3 fork would move to depth 4 > d: abandoned.
        // New depths 1..2 are the published blocks: remainder 0 at depth 1.
        assert_eq!(next.fork_length(&p, 1, 1), 0);
        assert_eq!(next.fork_length(&p, 2, 1), 0);
        // Owners: depths 1..2 adversary (published), delta = 1 so the old
        // depth-2 owner... is now at depth 3 which is ≥ d: it crossed the
        // boundary and was rewarded.
        assert_eq!(next.owners, vec![Owner::Adversary, Owner::Adversary]);
        assert_eq!(
            outs[0].rewards,
            BlockRewards {
                adversary: 1,
                honest: 0
            }
        );
    }

    #[test]
    fn probabilities_sum_to_one_across_random_states() {
        // Deterministic sweep over a slice of the state space.
        let p = params(0.35, 0.4, 2, 2, 3);
        for a in 0..=3u8 {
            for b in 0..=3u8 {
                for c in 0..=3u8 {
                    for owner in [Owner::Honest, Owner::Adversary] {
                        for phase in [Phase::Mining, Phase::HonestFound, Phase::AdversaryFound] {
                            let s = SmState {
                                forks: vec![a, b, c, 0],
                                owners: vec![owner],
                                phase,
                            };
                            for action in available_actions(&p, &s) {
                                let outs = successors(&p, &s, &action).unwrap();
                                probabilities_sum_to_one(&outs);
                                for o in &outs {
                                    assert!(o.state.is_consistent(&p));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn release_actions_rejected_in_wrong_phase_or_length() {
        let p = params(0.3, 0.5, 2, 1, 4);
        let s = SmState::initial(&p);
        let release = SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1,
        };
        assert!(successors(&p, &s, &release).is_err());
        let mut s2 = s.clone();
        s2.phase = Phase::AdversaryFound;
        // Fork is empty: length 1 exceeds it.
        assert!(successors(&p, &s2, &release).is_err());
    }
}
