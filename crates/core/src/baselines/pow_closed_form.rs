//! Closed-form relative revenue of the classic proof-of-work selfish-mining
//! attack of Eyal and Sirer ("Majority is not enough", 2014/2018).
//!
//! The formula is used as a *trend anchor*: the efficient-proof-system attack
//! of this crate should (a) reduce to comparable behaviour when the adversary
//! is restricted to a single fork on the tip and (b) dominate it once multiple
//! forks are allowed. It also reproduces the two classic security thresholds
//! quoted in the paper's related-work discussion: profitability above
//! `p = 1/3` for `γ = 0` and above `p = 1/4` for `γ = 1/2`.

use crate::SelfishMiningError;

/// Relative revenue of the Eyal–Sirer selfish-mining strategy in a
/// proof-of-work longest-chain blockchain, for adversarial hash-rate share
/// `p` and switching probability `gamma`.
///
/// The expression is Equation (8) of the original paper:
///
/// ```text
/// R = [ p(1−p)²(4p + γ(1−2p)) − p³ ] / [ 1 − p(1 + (2−p)p) ]
/// ```
///
/// # Errors
///
/// Returns [`SelfishMiningError::InvalidParameter`] if `p` or `gamma` lie
/// outside `[0, 1]` (the formula's denominator also vanishes at `p = 1`, which
/// is rejected).
///
/// # Example
///
/// ```
/// use selfish_mining::baselines::eyal_sirer_relative_revenue;
///
/// // Below the γ = 0 profitability threshold of 1/3 selfish mining loses.
/// let r = eyal_sirer_relative_revenue(0.3, 0.0).unwrap();
/// assert!(r < 0.3);
/// // Above it, selfish mining wins.
/// let r = eyal_sirer_relative_revenue(0.4, 0.0).unwrap();
/// assert!(r > 0.4);
/// ```
pub fn eyal_sirer_relative_revenue(p: f64, gamma: f64) -> Result<f64, SelfishMiningError> {
    if !(0.0..1.0).contains(&p) || !p.is_finite() {
        return Err(SelfishMiningError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1)",
        });
    }
    if !(0.0..=1.0).contains(&gamma) || !gamma.is_finite() {
        return Err(SelfishMiningError::InvalidParameter {
            name: "gamma",
            constraint: "must lie in [0, 1]",
        });
    }
    let numerator = p * (1.0 - p) * (1.0 - p) * (4.0 * p + gamma * (1.0 - 2.0 * p)) - p.powi(3);
    let denominator = 1.0 - p * (1.0 + (2.0 - p) * p);
    Ok((numerator / denominator).max(0.0))
}

/// The smallest adversarial share at which the Eyal–Sirer strategy becomes
/// strictly more profitable than honest mining, found by bisection on
/// `R(p, γ) − p`.
///
/// # Errors
///
/// Returns [`SelfishMiningError::InvalidParameter`] if `gamma` lies outside
/// `[0, 1]`.
pub fn profitability_threshold(gamma: f64) -> Result<f64, SelfishMiningError> {
    if !(0.0..=1.0).contains(&gamma) || !gamma.is_finite() {
        return Err(SelfishMiningError::InvalidParameter {
            name: "gamma",
            constraint: "must lie in [0, 1]",
        });
    }
    let advantage = |p: f64| eyal_sirer_relative_revenue(p, gamma).expect("p in range") - p;
    let mut lo = 1e-6;
    let mut hi = 0.5 - 1e-6;
    // The advantage is negative at p → 0 and positive at p → 1/2 for every γ.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if advantage(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_thresholds_are_reproduced() {
        // γ = 0: threshold 1/3; γ = 1/2: threshold 1/4; γ = 1: threshold 0.
        let t0 = profitability_threshold(0.0).unwrap();
        assert!((t0 - 1.0 / 3.0).abs() < 1e-3, "threshold {t0}");
        let t_half = profitability_threshold(0.5).unwrap();
        assert!((t_half - 0.25).abs() < 1e-3, "threshold {t_half}");
        let t1 = profitability_threshold(1.0).unwrap();
        assert!(t1 < 1e-3, "threshold {t1}");
    }

    #[test]
    fn revenue_is_monotone_in_gamma() {
        for p in [0.1, 0.2, 0.3, 0.4] {
            let r0 = eyal_sirer_relative_revenue(p, 0.0).unwrap();
            let r5 = eyal_sirer_relative_revenue(p, 0.5).unwrap();
            let r1 = eyal_sirer_relative_revenue(p, 1.0).unwrap();
            assert!(r0 <= r5 + 1e-12 && r5 <= r1 + 1e-12);
        }
    }

    #[test]
    fn revenue_vanishes_with_no_resource() {
        assert_eq!(eyal_sirer_relative_revenue(0.0, 0.7).unwrap(), 0.0);
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        assert!(eyal_sirer_relative_revenue(1.0, 0.5).is_err());
        assert!(eyal_sirer_relative_revenue(-0.1, 0.5).is_err());
        assert!(eyal_sirer_relative_revenue(0.3, 1.5).is_err());
        assert!(profitability_threshold(-1.0).is_err());
    }
}
