//! The honest-mining baseline.
//!
//! Baseline (1) of the paper's evaluation: the strategy that only extends the
//! leading block of the main chain and publishes every block immediately. In
//! the `(p, k)`-mining system model the honest strategy mines on exactly one
//! block, so by fairness its expected relative revenue equals its resource
//! share `p` — there is nothing to optimise, which is why the baseline is a
//! closed form rather than an MDP solve.

use crate::SelfishMiningError;

/// Expected relative revenue of an adversary that mines honestly with
/// resource share `p`.
///
/// # Errors
///
/// Returns [`SelfishMiningError::InvalidParameter`] if `p` lies outside
/// `[0, 1]`.
///
/// # Example
///
/// ```
/// let revenue = selfish_mining::baselines::honest_relative_revenue(0.25).unwrap();
/// assert_eq!(revenue, 0.25);
/// ```
pub fn honest_relative_revenue(p: f64) -> Result<f64, SelfishMiningError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(SelfishMiningError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1]",
        });
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_revenue_equals_resource_share() {
        for p in [0.0, 0.1, 0.25, 0.3, 0.5, 1.0] {
            assert_eq!(honest_relative_revenue(p).unwrap(), p);
        }
    }

    #[test]
    fn rejects_invalid_share() {
        assert!(honest_relative_revenue(-0.1).is_err());
        assert!(honest_relative_revenue(1.5).is_err());
        assert!(honest_relative_revenue(f64::NAN).is_err());
    }

    #[test]
    fn chain_quality_complement_holds() {
        // Chain quality = 1 − ERRev (Section 2.2).
        let p = 0.3;
        let errev = honest_relative_revenue(p).unwrap();
        assert!(((1.0 - errev) - 0.7).abs() < 1e-15);
    }
}
