//! The single-tree selfish-mining baseline (baseline (2) of Section 4).
//!
//! This is the direct extension of the classic Eyal–Sirer proof-of-work attack
//! to efficient proof systems: the adversary grows a single private *tree*
//! rooted at the leading block of the main chain (exploiting cheap proofs to
//! mine on several tree nodes concurrently) and publishes the longest path of
//! the tree whenever the public chain catches up with the tree's depth, racing
//! it with the switching probability `γ`; when the adversary's lead drops from
//! two to one it publishes the whole path and wins outright, exactly as in the
//! original attack.
//!
//! Because the strategy is *fixed*, the attack induces a finite Markov chain
//! rather than an MDP. Its expected relative revenue is computed exactly from
//! the chain's stationary distribution, using the same `(p, k)`-mining system
//! model as the main attack: the adversary's chance of finding the next proof
//! grows with the number of tree positions it mines on.
//!
//! The tree shape is tracked as the number of nodes per depth, capped at the
//! maximal width `f` per depth and the maximal depth `l`, mirroring how the
//! paper bounds the baseline's model (`l = 4`, `f = 5` in Table 1).

use crate::SelfishMiningError;
use sm_markov::{iterative_gains, MarkovChain};
use std::collections::HashMap;

/// Configuration of the single-tree attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTreeAttack {
    /// Relative resource of the adversary, `p ∈ [0, 1)`.
    pub p: f64,
    /// Switching probability `γ ∈ [0, 1]`.
    pub gamma: f64,
    /// Maximal depth of the private tree (the paper's `l`).
    pub max_depth: usize,
    /// Maximal number of tree nodes per depth (the paper's tree width `f`).
    pub max_width: usize,
}

/// Result of analysing the single-tree attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleTreeResult {
    /// Exact expected relative revenue of the attack.
    pub relative_revenue: f64,
    /// Number of states of the induced Markov chain.
    pub num_states: usize,
}

/// Internal chain state: number of private tree nodes per depth plus the
/// public chain's progress since the fork point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TreeState {
    /// `nodes[q]` = number of tree nodes at depth `q + 1`.
    nodes: Vec<u8>,
    /// Honest blocks mined on the public chain since the fork point.
    honest_progress: u8,
}

impl TreeState {
    fn reset(max_depth: usize) -> Self {
        TreeState {
            nodes: vec![0; max_depth],
            honest_progress: 0,
        }
    }

    /// Depth of the private tree (length of its longest path).
    fn depth(&self) -> usize {
        self.nodes
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |idx| idx + 1)
    }

    /// Number of tree positions the adversary mines on: every node (or the
    /// fork-point block for depth 1) can parent a new child as long as the
    /// width cap of the child depth is not reached.
    fn mining_slots(&self, max_width: usize) -> usize {
        let mut slots = 0;
        for q in 0..self.nodes.len() {
            if (self.nodes[q] as usize) < max_width {
                let parents = if q == 0 {
                    1
                } else {
                    self.nodes[q - 1] as usize
                };
                slots += parents;
            }
        }
        slots
    }
}

impl SingleTreeAttack {
    /// The configuration used in the paper's Table 1: tree depth 4, width 5.
    pub fn paper_configuration(p: f64, gamma: f64) -> Self {
        SingleTreeAttack {
            p,
            gamma,
            max_depth: 4,
            max_width: 5,
        }
    }

    /// Builds the induced Markov chain and computes the exact expected
    /// relative revenue of the attack.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] for out-of-range
    /// parameters and propagates Markov-chain solver errors.
    pub fn analyse(&self) -> Result<SingleTreeResult, SelfishMiningError> {
        self.validate()?;
        let p = self.p;
        let gamma = self.gamma;

        // Reachable-state exploration.
        let mut index_of: HashMap<TreeState, usize> = HashMap::new();
        let mut states: Vec<TreeState> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let initial = TreeState::reset(self.max_depth);
        index_of.insert(initial.clone(), 0);
        states.push(initial);
        queue.push(0);

        // Per-state transition rows and expected per-step rewards.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut adversary_reward: Vec<f64> = Vec::new();
        let mut honest_reward: Vec<f64> = Vec::new();

        let intern = |state: TreeState,
                      states: &mut Vec<TreeState>,
                      index_of: &mut HashMap<TreeState, usize>,
                      queue: &mut Vec<usize>| {
            if let Some(&idx) = index_of.get(&state) {
                return idx;
            }
            let idx = states.len();
            index_of.insert(state.clone(), idx);
            states.push(state);
            queue.push(idx);
            idx
        };

        let mut cursor = 0;
        while cursor < queue.len() {
            let state_index = queue[cursor];
            cursor += 1;
            let state = states[state_index].clone();
            let sigma = state.mining_slots(self.max_width) as f64;
            let denominator = (1.0 - p) + p * sigma;

            let mut row: Vec<(usize, f64)> = Vec::new();
            let mut adv = 0.0;
            let mut hon = 0.0;

            if denominator <= 0.0 {
                // Degenerate case (p = 1 with a saturated tree): self-loop.
                row.push((state_index, 1.0));
            } else {
                // Adversary extends the tree at depth q+1.
                if p > 0.0 {
                    for q in 0..self.max_depth {
                        if (state.nodes[q] as usize) >= self.max_width {
                            continue;
                        }
                        let parents = if q == 0 {
                            1
                        } else {
                            state.nodes[q - 1] as usize
                        };
                        if parents == 0 {
                            continue;
                        }
                        let probability = p * parents as f64 / denominator;
                        let mut next = state.clone();
                        next.nodes[q] += 1;
                        let idx = intern(next, &mut states, &mut index_of, &mut queue);
                        row.push((idx, probability));
                    }
                }
                // Honest miners extend the public chain.
                let honest_probability = (1.0 - p) / denominator;
                if honest_probability > 0.0 {
                    let tree_depth = state.depth();
                    let progress = state.honest_progress as usize + 1;
                    let reset = TreeState::reset(self.max_depth);
                    if tree_depth == 0 {
                        // Nothing private: the honest block simply extends the
                        // chain.
                        let idx = intern(reset, &mut states, &mut index_of, &mut queue);
                        row.push((idx, honest_probability));
                        hon += honest_probability;
                    } else if progress == tree_depth {
                        // The public chain caught up: publish and race.
                        let idx = intern(reset, &mut states, &mut index_of, &mut queue);
                        row.push((idx, honest_probability));
                        adv += honest_probability * gamma * tree_depth as f64;
                        hon += honest_probability * (1.0 - gamma) * progress as f64;
                    } else if tree_depth >= 2 && tree_depth == progress + 1 {
                        // Lead dropped to one: publish the whole path and win
                        // outright (the Eyal–Sirer "publish all" move).
                        let idx = intern(reset, &mut states, &mut index_of, &mut queue);
                        row.push((idx, honest_probability));
                        adv += honest_probability * tree_depth as f64;
                    } else {
                        // Keep withholding.
                        let mut next = state.clone();
                        next.honest_progress = progress as u8;
                        let idx = intern(next, &mut states, &mut index_of, &mut queue);
                        row.push((idx, honest_probability));
                    }
                }
            }

            debug_assert_eq!(rows.len(), state_index);
            rows.push(row);
            adversary_reward.push(adv);
            honest_reward.push(hon);
        }

        let chain = MarkovChain::from_rows(rows)?;
        // The chain can reach several thousand states for the paper's tree
        // width; fused iterative sweeps (one pass for both reward functions)
        // keep the evaluation cheap.
        let gains = iterative_gains(
            &chain,
            &[&adversary_reward, &honest_reward],
            1e-9,
            5_000_000,
        )?;
        let (a, h) = (gains[0], gains[1]);
        if a + h <= 0.0 {
            return Err(SelfishMiningError::BracketingFailure {
                beta_low: a,
                beta_up: h,
            });
        }
        Ok(SingleTreeResult {
            relative_revenue: a / (a + h),
            num_states: chain.num_states(),
        })
    }

    fn validate(&self) -> Result<(), SelfishMiningError> {
        if !(0.0..1.0).contains(&self.p) || !self.p.is_finite() {
            return Err(SelfishMiningError::InvalidParameter {
                name: "p",
                constraint: "must lie in [0, 1)",
            });
        }
        if !(0.0..=1.0).contains(&self.gamma) || !self.gamma.is_finite() {
            return Err(SelfishMiningError::InvalidParameter {
                name: "gamma",
                constraint: "must lie in [0, 1]",
            });
        }
        if self.max_depth == 0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "max_depth",
                constraint: "must be at least 1",
            });
        }
        if self.max_width == 0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "max_width",
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn revenue(p: f64, gamma: f64, depth: usize, width: usize) -> f64 {
        SingleTreeAttack {
            p,
            gamma,
            max_depth: depth,
            max_width: width,
        }
        .analyse()
        .unwrap()
        .relative_revenue
    }

    #[test]
    fn zero_resource_yields_zero_revenue() {
        assert!(revenue(0.0, 0.5, 4, 5) < 1e-12);
    }

    #[test]
    fn revenue_is_monotone_in_gamma() {
        for p in [0.1, 0.2, 0.3] {
            let r0 = revenue(p, 0.0, 4, 5);
            let r5 = revenue(p, 0.5, 4, 5);
            let r1 = revenue(p, 1.0, 4, 5);
            assert!(r0 <= r5 + 1e-9 && r5 <= r1 + 1e-9, "p = {p}");
        }
    }

    #[test]
    fn revenue_is_monotone_in_p() {
        let mut previous = 0.0;
        for step in 0..=6 {
            let p = 0.05 * step as f64;
            let r = revenue(p, 0.5, 4, 5);
            assert!(r >= previous - 1e-9, "revenue should grow with p");
            previous = r;
        }
    }

    #[test]
    fn wider_trees_help_but_stay_below_one() {
        let narrow = revenue(0.3, 0.5, 4, 1);
        let wide = revenue(0.3, 0.5, 4, 5);
        assert!(wide >= narrow - 1e-9);
        assert!(wide < 1.0);
    }

    #[test]
    fn small_adversary_does_worse_than_honest_at_gamma_zero() {
        // With γ = 0 and small p, withholding loses races, so the attack is
        // strictly worse than honest mining — the same qualitative behaviour
        // as the classic PoW analysis.
        let r = revenue(0.1, 0.0, 4, 5);
        assert!(r < 0.1, "got {r}");
    }

    #[test]
    fn paper_configuration_matches_table_setup() {
        let attack = SingleTreeAttack::paper_configuration(0.3, 0.5);
        assert_eq!(attack.max_depth, 4);
        assert_eq!(attack.max_width, 5);
        let result = attack.analyse().unwrap();
        assert!(result.num_states > 10);
        assert!((0.0..1.0).contains(&result.relative_revenue));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SingleTreeAttack {
            p: 1.0,
            gamma: 0.5,
            max_depth: 4,
            max_width: 5
        }
        .analyse()
        .is_err());
        assert!(SingleTreeAttack {
            p: 0.3,
            gamma: -0.1,
            max_depth: 4,
            max_width: 5
        }
        .analyse()
        .is_err());
        assert!(SingleTreeAttack {
            p: 0.3,
            gamma: 0.5,
            max_depth: 0,
            max_width: 5
        }
        .analyse()
        .is_err());
        assert!(SingleTreeAttack {
            p: 0.3,
            gamma: 0.5,
            max_depth: 4,
            max_width: 0
        }
        .analyse()
        .is_err());
    }
}
