//! Baseline strategies used in the experimental evaluation (Section 4).
//!
//! The paper compares the computed attack against two baselines:
//!
//! 1. **Honest mining** — the strategy that only ever extends the leading
//!    block of the main chain ([`honest`]).
//! 2. **Single-tree selfish mining** — the direct extension of the classic
//!    Eyal–Sirer attack to efficient proof systems: the adversary grows a
//!    single private *tree* (rather than a chain) on the leading block and
//!    publishes it when the public chain catches up ([`single_tree`]).
//!
//! [`pow_closed_form`] additionally provides the closed-form relative revenue
//! of the original proof-of-work selfish-mining attack, used as a sanity
//! anchor for trends in tests and experiments.

pub mod honest;
pub mod pow_closed_form;
pub mod single_tree;

pub use honest::honest_relative_revenue;
pub use pow_closed_form::eyal_sirer_relative_revenue;
pub use single_tree::{SingleTreeAttack, SingleTreeResult};
