//! Pluggable attack scenarios: restricted-action (and restricted-mining)
//! variants of the selfish-mining MDP.
//!
//! The paper's model optimizes over *every* admissible withholding behaviour.
//! An [`AttackScenario`] carves a sub-family out of that space: it defines
//! the admissible action set per state (a filter over
//! [`crate::available_actions`]) and, optionally, a transition filter
//! restricting which block positions the adversary mines on. The whole
//! solve → export → simulate → certify pipeline is generic over the
//! scenario: [`crate::SelfishMiningModel::build_scenario`] and
//! [`crate::ParametricModel::build_scenario`] construct per-scenario arenas,
//! the sweep engine fans `(scenario, d, f) × γ × p` jobs over its worker
//! pool, and the conformance subsystem witnesses each scenario's certified
//! `[β_low, β_up]` bracket with a Monte-Carlo replay of the scenario's
//! ε-optimal strategy.
//!
//! # The certification argument under restriction
//!
//! Every scenario except [`AttackScenario::HonestMining`] is a *pure action
//! restriction*: it removes actions from `A(s)` and leaves the transition
//! function untouched ([`AttackScenario::is_action_restriction`]). The
//! restricted MDP is therefore a sub-MDP of the optimal one, every strategy
//! of the restricted model is a strategy of the full model, and the
//! restricted optimum is dominated by the full optimum:
//! `ERRev*_scenario ≤ ERRev*_optimal`. Algorithm 1 applies verbatim to the
//! sub-MDP (its correctness only needs a finite MDP with at least one action
//! per state, which the scenario contract guarantees), so the certified
//! brackets of a stubborn scenario and of the optimal scenario satisfy
//! `β_low(scenario) ≤ β_up(optimal)` up to solver precision — a property the
//! test suite checks across a seeded grid.
//!
//! `HonestMining` additionally filters the *mining* transition (the
//! adversary only mines on the tip, `σ = 1`), which makes it a different —
//! degenerate — system rather than a sub-MDP: its certified revenue is the
//! proportional share `p`, which is what makes it the sanity anchor of the
//! scenario matrix.

use crate::{available_actions, AttackParams, Phase, SmAction, SmState};
use sm_chain::{ChallengeVisibility, ConsensusBackend};
use std::fmt;

/// Scope of a certified `[β_low, β_up]` bracket under a given consensus
/// backend — the model-layer consumption of the backend-declared
/// [`ChallengeVisibility`] capability.
///
/// The solver optimises over *memoryless* strategies, which is exhaustive
/// when challenges are unpredictable (the adversary learns nothing about
/// future lotteries, so the MDP state is a sufficient statistic). Under a
/// predictable schedule (epoch-based stake lotteries, self-advancing VDF
/// beacons) the adversary can condition on future lottery outcomes — a
/// strategy space the memoryless search does not cover — so the certified
/// `β_up` is an optimum over a sub-family only. The *lower* bound and the
/// witnessed strategy's revenue bracket remain valid under every backend:
/// they are statements about one concrete strategy, not about a supremum.
/// See the "Multi-backend conformance" section of EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CertificateScope {
    /// Both certificate ends bind: `β_up` is an upper bound over the full
    /// admissible strategy space (unpredictable challenges).
    #[default]
    TwoSided,
    /// Only `β_low` (and the witnessed strategy's bracket) binds: a
    /// predictable challenge schedule admits planning-ahead strategies the
    /// memoryless solver does not search, so `β_up` is certified only over
    /// memoryless adversaries.
    LowerBoundOnly,
}

impl CertificateScope {
    /// The scope of certificates witnessed against `backend`.
    pub fn for_backend(backend: ConsensusBackend) -> CertificateScope {
        match backend.challenge_visibility() {
            ChallengeVisibility::Unpredictable => CertificateScope::TwoSided,
            ChallengeVisibility::Predictable => CertificateScope::LowerBoundOnly,
        }
    }

    /// A stable label used in reports and the service wire format.
    pub fn label(&self) -> &'static str {
        match self {
            CertificateScope::TwoSided => "two-sided",
            CertificateScope::LowerBoundOnly => "lower-bound-only",
        }
    }
}

impl fmt::Display for CertificateScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A restricted-action attack scenario of the selfish-mining MDP.
///
/// The default scenario is [`AttackScenario::Optimal`] — the unrestricted
/// model of the paper; every pre-scenario API is equivalent to passing it
/// explicitly.
///
/// # Example
///
/// ```
/// use selfish_mining::{AttackParams, AttackScenario, SelfishMiningModel};
///
/// # fn main() -> Result<(), selfish_mining::SelfishMiningError> {
/// let params = AttackParams::new(0.3, 0.5, 2, 1, 4)?;
/// let optimal = SelfishMiningModel::build_scenario(&params, AttackScenario::Optimal)?;
/// let stubborn = SelfishMiningModel::build_scenario(&params, AttackScenario::LeadStubborn)?;
/// // A restriction never enlarges the reachable space.
/// assert!(stubborn.num_states() <= optimal.num_states());
/// assert_eq!(stubborn.scenario(), AttackScenario::LeadStubborn);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttackScenario {
    /// The unrestricted model of the paper: every admissible release is
    /// offered, the adversary mines on every open position.
    #[default]
    Optimal,
    /// The degenerate honest-behaviour scenario: the adversary mines only on
    /// the public tip (`σ = 1`) and must publish each block it finds
    /// immediately (the full tip fork, nothing else is admissible). Its
    /// certified revenue is the proportional share `p` — the sanity anchor
    /// of the scenario matrix.
    HonestMining,
    /// Lead-stubborn withholding: the adversary publishes only to *match* a
    /// freshly found honest block — admissible releases exist solely in
    /// [`Phase::HonestFound`] states and have `length == depth` (a `γ` tie
    /// race) — and stays silent on its own block finds, keeping the rest of
    /// its lead private instead of ever overriding the public chain (the
    /// restricted-action analogue of Nayak et al.'s lead-stubborn miner).
    LeadStubborn,
    /// Equal-fork-stubborn withholding: the adversary refuses tie races —
    /// in a [`Phase::HonestFound`] state only strictly winning releases
    /// (`length > depth`) are admissible, so the switching probability `γ`
    /// never decides an outcome in its favour.
    EqualForkStubborn,
    /// Trail-stubborn withholding with lag `k`: the adversary keeps forks
    /// rooted arbitrarily deep but only ever publishes a fork whose root
    /// trails the public tip by at most `k` blocks (root depth ≤ `k + 1`);
    /// deeper reorganisations are mined stubbornly and never attempted.
    /// `TrailStubborn { lag: d − 1 }` admits every release and coincides
    /// with [`AttackScenario::Optimal`].
    TrailStubborn {
        /// Maximal trail `k ≥ 0` behind the tip at which a fork may still be
        /// published.
        lag: usize,
    },
}

impl AttackScenario {
    /// A stable, human-readable label used in reports and table names.
    pub fn label(&self) -> String {
        match self {
            AttackScenario::Optimal => "optimal".to_string(),
            AttackScenario::HonestMining => "honest-mining".to_string(),
            AttackScenario::LeadStubborn => "lead-stubborn".to_string(),
            AttackScenario::EqualForkStubborn => "equal-fork-stubborn".to_string(),
            AttackScenario::TrailStubborn { lag } => format!("trail-stubborn({lag})"),
        }
    }

    /// Parses a scenario from its [`AttackScenario::label`] string — the
    /// inverse of `label` for every representable scenario, so labels can
    /// round-trip through reports and the query service's JSONL requests.
    ///
    /// Returns `None` for anything that is not exactly a label this crate
    /// emits (including a malformed `trail-stubborn(..)` lag).
    ///
    /// # Example
    ///
    /// ```
    /// use selfish_mining::AttackScenario;
    ///
    /// assert_eq!(
    ///     AttackScenario::from_label("lead-stubborn"),
    ///     Some(AttackScenario::LeadStubborn)
    /// );
    /// assert_eq!(
    ///     AttackScenario::from_label("trail-stubborn(2)"),
    ///     Some(AttackScenario::TrailStubborn { lag: 2 })
    /// );
    /// assert_eq!(AttackScenario::from_label("evil"), None);
    /// ```
    pub fn from_label(label: &str) -> Option<AttackScenario> {
        match label {
            "optimal" => Some(AttackScenario::Optimal),
            "honest-mining" => Some(AttackScenario::HonestMining),
            "lead-stubborn" => Some(AttackScenario::LeadStubborn),
            "equal-fork-stubborn" => Some(AttackScenario::EqualForkStubborn),
            other => {
                let lag = other
                    .strip_prefix("trail-stubborn(")?
                    .strip_suffix(')')?
                    .parse::<usize>()
                    .ok()?;
                Some(AttackScenario::TrailStubborn { lag })
            }
        }
    }

    /// The scenario family shipped with the crate, in report order: the
    /// optimal scenario, the three stubborn variants (trail with lag 0), and
    /// the honest sanity scenario.
    pub fn default_family() -> Vec<AttackScenario> {
        vec![
            AttackScenario::Optimal,
            AttackScenario::LeadStubborn,
            AttackScenario::EqualForkStubborn,
            AttackScenario::TrailStubborn { lag: 0 },
            AttackScenario::HonestMining,
        ]
    }

    /// Whether the scenario is a *pure action restriction* of the optimal
    /// model: a filter over [`available_actions`] that leaves the transition
    /// function untouched. For such scenarios the certified optimum is
    /// dominated by the optimal scenario's (see the module docs); only
    /// [`AttackScenario::HonestMining`] — which also restricts mining — is
    /// not of this kind.
    pub fn is_action_restriction(&self) -> bool {
        !matches!(self, AttackScenario::HonestMining)
    }

    /// Whether the scenario restricts the adversary's mining to the public
    /// tip (`σ = 1`). True only for [`AttackScenario::HonestMining`]; the
    /// simulator mirrors this through its `MiningRegime::TipOnly`.
    pub fn restricts_mining_to_tip(&self) -> bool {
        matches!(self, AttackScenario::HonestMining)
    }

    /// Whether the adversary mines on positions rooted at the given depth
    /// (1-based) under this scenario — the transition filter applied to the
    /// `mine` action's outcome split.
    pub fn admits_mining_depth(&self, depth: usize) -> bool {
        match self {
            AttackScenario::HonestMining => depth == 1,
            _ => true,
        }
    }

    /// Whether `action` is admissible in `state` under this scenario.
    ///
    /// The contract every scenario upholds: at least one *available* action
    /// (see [`available_actions`]) is admitted in every state, so scenario
    /// MDPs never have action-less states. (The model builders additionally
    /// enforce this structurally and fail with a typed error if a custom
    /// variant ever violated it.)
    pub fn admits(&self, params: &AttackParams, state: &SmState, action: &SmAction) -> bool {
        match self {
            AttackScenario::Optimal => true,
            AttackScenario::HonestMining => match action {
                // Honest behaviour never withholds: in an `AdversaryFound`
                // state with a tip fork the only admissible action is its
                // full, immediate release.
                SmAction::Mine => {
                    state.phase != Phase::AdversaryFound || state.fork_length(params, 1, 1) == 0
                }
                SmAction::Release {
                    depth,
                    fork,
                    length,
                } => {
                    state.phase == Phase::AdversaryFound
                        && *depth == 1
                        && *fork == 1
                        && *length == state.fork_length(params, 1, 1) as usize
                }
            },
            AttackScenario::LeadStubborn => match action {
                SmAction::Mine => true,
                // Matching only: a tie race against a pending honest block.
                // In an AdversaryFound state a `length == depth` release has
                // no pending block to tie with — it would orphan `depth − 1`
                // public blocks outright, i.e. an override — so lead-stubborn
                // admits no releases there at all.
                SmAction::Release { depth, length, .. } => {
                    state.phase == Phase::HonestFound && length == depth
                }
            },
            AttackScenario::EqualForkStubborn => match action {
                SmAction::Mine => true,
                SmAction::Release { depth, length, .. } => {
                    state.phase == Phase::AdversaryFound || length > depth
                }
            },
            AttackScenario::TrailStubborn { lag } => match action {
                SmAction::Mine => true,
                SmAction::Release { depth, .. } => *depth <= lag.saturating_add(1),
            },
        }
    }

    /// The admissible action set of `state` under this scenario, in the same
    /// order as [`available_actions`] (which the [`AttackScenario::Optimal`]
    /// scenario returns unchanged).
    ///
    /// # Example
    ///
    /// ```
    /// use selfish_mining::{AttackParams, AttackScenario, Phase, SmState};
    ///
    /// let params = AttackParams::new(0.3, 0.5, 1, 1, 4).unwrap();
    /// let mut state = SmState::initial(&params);
    /// state.phase = Phase::HonestFound;
    /// *state.fork_length_mut(&params, 1, 1) = 3;
    /// let optimal = AttackScenario::Optimal.admissible_actions(&params, &state);
    /// let stubborn = AttackScenario::LeadStubborn.admissible_actions(&params, &state);
    /// // Lead-stubborn keeps `mine` and the tie release only.
    /// assert!(stubborn.len() < optimal.len());
    /// assert_eq!(stubborn.len(), 2);
    /// ```
    pub fn admissible_actions(&self, params: &AttackParams, state: &SmState) -> Vec<SmAction> {
        let mut actions = available_actions(params, state);
        if !matches!(self, AttackScenario::Optimal) {
            actions.retain(|action| self.admits(params, state, action));
        }
        debug_assert!(
            !actions.is_empty(),
            "scenario {self} admits no action in state {state}"
        );
        actions
    }

    /// The number of block positions the adversary mines on in `state` under
    /// this scenario — [`SmState::mining_slots`] restricted to the depths
    /// the scenario admits ([`AttackScenario::admits_mining_depth`]). Always
    /// at least 1 (depth 1 is admitted by every scenario and contributes a
    /// slot whether or not a tip fork exists), which keeps the mining split
    /// well defined on the whole parameter square including `p = 1`.
    pub fn mining_slots(&self, params: &AttackParams, state: &SmState) -> usize {
        (1..=params.depth)
            .filter(|&depth| self.admits_mining_depth(depth))
            .map(|depth| state.mining_slots_at_depth(params, depth))
            .sum()
    }

    /// A stable per-scenario salt folded into the conformance seed streams so
    /// that no two scenarios share a Monte-Carlo replica stream at the same
    /// grid coordinates. [`AttackScenario::Optimal`] maps to 0 and is — by
    /// convention of the conformance subsystem — not folded in at all, which
    /// keeps the historical (pre-scenario) replica streams unchanged.
    pub fn seed_salt(&self) -> u64 {
        match self {
            AttackScenario::Optimal => 0,
            AttackScenario::HonestMining => 1,
            AttackScenario::LeadStubborn => 2,
            AttackScenario::EqualForkStubborn => 3,
            AttackScenario::TrailStubborn { lag } => 0x5747_0000_0000_0000 | *lag as u64,
        }
    }
}

impl fmt::Display for AttackScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Owner;

    fn params(d: usize, f: usize, l: usize) -> AttackParams {
        AttackParams::new(0.3, 0.5, d, f, l).unwrap()
    }

    /// Deterministic sweep over a slice of the (d=2, f=2) state space.
    fn state_slice(p: &AttackParams) -> Vec<SmState> {
        let mut states = Vec::new();
        for a in 0..=3u8 {
            for b in 0..=3u8 {
                for owner in [Owner::Honest, Owner::Adversary] {
                    for phase in [Phase::Mining, Phase::HonestFound, Phase::AdversaryFound] {
                        let state = SmState {
                            forks: vec![a, b, 0, 1],
                            owners: vec![owner],
                            phase,
                        };
                        if state.is_consistent(p) {
                            states.push(state);
                        }
                    }
                }
            }
        }
        states
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let family = AttackScenario::default_family();
        let labels: std::collections::HashSet<String> =
            family.iter().map(AttackScenario::label).collect();
        assert_eq!(labels.len(), family.len());
        assert_eq!(AttackScenario::Optimal.label(), "optimal");
        assert_eq!(
            AttackScenario::TrailStubborn { lag: 2 }.label(),
            "trail-stubborn(2)"
        );
        assert_eq!(format!("{}", AttackScenario::HonestMining), "honest-mining");
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        let mut family = AttackScenario::default_family();
        family.push(AttackScenario::TrailStubborn { lag: 7 });
        for scenario in family {
            assert_eq!(
                AttackScenario::from_label(&scenario.label()),
                Some(scenario)
            );
        }
        for junk in [
            "",
            "Optimal",
            "trail-stubborn",
            "trail-stubborn()",
            "trail-stubborn(-1)",
            "trail-stubborn(two)",
            "lead-stubborn ",
        ] {
            assert_eq!(AttackScenario::from_label(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn seed_salts_are_distinct_and_optimal_is_zero() {
        let mut family = AttackScenario::default_family();
        family.push(AttackScenario::TrailStubborn { lag: 3 });
        let salts: std::collections::HashSet<u64> =
            family.iter().map(AttackScenario::seed_salt).collect();
        assert_eq!(salts.len(), family.len());
        assert_eq!(AttackScenario::Optimal.seed_salt(), 0);
    }

    #[test]
    fn every_scenario_admits_at_least_one_action_everywhere() {
        let p = params(2, 2, 3);
        let mut family = AttackScenario::default_family();
        family.push(AttackScenario::TrailStubborn { lag: 1 });
        for state in state_slice(&p) {
            for scenario in &family {
                let actions = scenario.admissible_actions(&p, &state);
                assert!(!actions.is_empty(), "{scenario} admits nothing in {state}");
                // Admissible sets are always subsets of the available set.
                let available = available_actions(&p, &state);
                assert!(actions.iter().all(|a| available.contains(a)));
            }
        }
    }

    #[test]
    fn optimal_admits_exactly_the_available_actions() {
        let p = params(2, 2, 3);
        for state in state_slice(&p) {
            assert_eq!(
                AttackScenario::Optimal.admissible_actions(&p, &state),
                available_actions(&p, &state)
            );
        }
    }

    #[test]
    fn lead_stubborn_admits_only_matching_releases() {
        let p = params(2, 1, 4);
        let mut state = SmState::initial(&p);
        state.phase = Phase::HonestFound;
        *state.fork_length_mut(&p, 1, 1) = 3;
        let actions = AttackScenario::LeadStubborn.admissible_actions(&p, &state);
        assert!(actions.contains(&SmAction::Mine));
        for action in &actions {
            if let SmAction::Release { depth, length, .. } = action {
                assert_eq!(length, depth);
            }
        }
        // The override release(1,1,2) is available but not admitted.
        assert!(available_actions(&p, &state).contains(&SmAction::Release {
            depth: 1,
            fork: 1,
            length: 2
        }));
        assert!(!actions.contains(&SmAction::Release {
            depth: 1,
            fork: 1,
            length: 2
        }));
        // On its own block find there is no pending block to match: every
        // release there is an override, so lead-stubborn admits none.
        state.phase = Phase::AdversaryFound;
        assert_eq!(
            AttackScenario::LeadStubborn.admissible_actions(&p, &state),
            vec![SmAction::Mine]
        );
    }

    #[test]
    fn equal_fork_stubborn_refuses_tie_races() {
        let p = params(1, 1, 4);
        let mut state = SmState::initial(&p);
        state.phase = Phase::HonestFound;
        *state.fork_length_mut(&p, 1, 1) = 2;
        let actions = AttackScenario::EqualForkStubborn.admissible_actions(&p, &state);
        // The tie release(1,1,1) is excluded, the winning release(1,1,2) kept.
        assert!(!actions.contains(&SmAction::Release {
            depth: 1,
            fork: 1,
            length: 1
        }));
        assert!(actions.contains(&SmAction::Release {
            depth: 1,
            fork: 1,
            length: 2
        }));
        // In an AdversaryFound state every release wins outright and is kept.
        state.phase = Phase::AdversaryFound;
        let adversary_actions = AttackScenario::EqualForkStubborn.admissible_actions(&p, &state);
        assert_eq!(adversary_actions, available_actions(&p, &state));
    }

    #[test]
    fn trail_stubborn_bounds_the_release_depth() {
        let p = params(3, 1, 4);
        let mut state = SmState::initial(&p);
        state.phase = Phase::AdversaryFound;
        *state.fork_length_mut(&p, 1, 1) = 1;
        *state.fork_length_mut(&p, 2, 1) = 2;
        *state.fork_length_mut(&p, 3, 1) = 3;
        let t0 = AttackScenario::TrailStubborn { lag: 0 }.admissible_actions(&p, &state);
        assert!(t0
            .iter()
            .all(|a| !matches!(a, SmAction::Release { depth, .. } if *depth > 1)));
        assert!(t0.iter().any(SmAction::is_release));
        let t1 = AttackScenario::TrailStubborn { lag: 1 }.admissible_actions(&p, &state);
        assert!(t1
            .iter()
            .any(|a| matches!(a, SmAction::Release { depth: 2, .. })));
        assert!(t1
            .iter()
            .all(|a| !matches!(a, SmAction::Release { depth: 3, .. })));
        // Full lag admits everything the optimal scenario does.
        let full = AttackScenario::TrailStubborn { lag: 2 }.admissible_actions(&p, &state);
        assert_eq!(full, available_actions(&p, &state));
    }

    #[test]
    fn honest_mining_forces_the_full_tip_release() {
        let p = params(2, 1, 4);
        let mut state = SmState::initial(&p);
        state.phase = Phase::AdversaryFound;
        *state.fork_length_mut(&p, 1, 1) = 1;
        let actions = AttackScenario::HonestMining.admissible_actions(&p, &state);
        assert_eq!(
            actions,
            vec![SmAction::Release {
                depth: 1,
                fork: 1,
                length: 1
            }]
        );
        // Without a tip fork, honest behaviour keeps mining.
        let mut deep = SmState::initial(&p);
        deep.phase = Phase::AdversaryFound;
        *deep.fork_length_mut(&p, 2, 1) = 1;
        assert_eq!(
            AttackScenario::HonestMining.admissible_actions(&p, &deep),
            vec![SmAction::Mine]
        );
        // A pending honest block is always incorporated.
        let mut pending = SmState::initial(&p);
        pending.phase = Phase::HonestFound;
        assert_eq!(
            AttackScenario::HonestMining.admissible_actions(&p, &pending),
            vec![SmAction::Mine]
        );
    }

    #[test]
    fn honest_mining_restricts_the_mining_split_to_the_tip() {
        let p = params(3, 2, 4);
        let state = SmState::initial(&p);
        assert_eq!(AttackScenario::Optimal.mining_slots(&p, &state), 3);
        assert_eq!(AttackScenario::HonestMining.mining_slots(&p, &state), 1);
        assert!(AttackScenario::HonestMining.restricts_mining_to_tip());
        assert!(AttackScenario::HonestMining.admits_mining_depth(1));
        assert!(!AttackScenario::HonestMining.admits_mining_depth(2));
        assert!(AttackScenario::LeadStubborn.admits_mining_depth(3));
    }

    #[test]
    fn mining_slots_agree_with_the_state_count_for_unrestricted_scenarios() {
        let p = params(2, 2, 3);
        for state in state_slice(&p) {
            for scenario in [
                AttackScenario::Optimal,
                AttackScenario::LeadStubborn,
                AttackScenario::EqualForkStubborn,
                AttackScenario::TrailStubborn { lag: 0 },
            ] {
                assert_eq!(scenario.mining_slots(&p, &state), state.mining_slots(&p));
            }
            assert!(AttackScenario::HonestMining.mining_slots(&p, &state) >= 1);
        }
    }

    #[test]
    fn trail_stubborn_with_saturating_lag_admits_every_release() {
        // Regression: `lag + 1` used to overflow for lag = usize::MAX (debug
        // panic; release wrap to 0, silently rejecting every release).
        let p = params(2, 1, 4);
        let mut state = SmState::initial(&p);
        state.phase = Phase::AdversaryFound;
        *state.fork_length_mut(&p, 2, 1) = 3;
        let unbounded = AttackScenario::TrailStubborn { lag: usize::MAX };
        assert_eq!(
            unbounded.admissible_actions(&p, &state),
            available_actions(&p, &state)
        );
    }

    #[test]
    fn certificate_scope_follows_the_backend_capability() {
        for backend in ConsensusBackend::default_family() {
            let scope = CertificateScope::for_backend(backend);
            if backend.adversary_can_plan_ahead() {
                assert_eq!(scope, CertificateScope::LowerBoundOnly, "{backend}");
            } else {
                assert_eq!(scope, CertificateScope::TwoSided, "{backend}");
            }
        }
        assert_eq!(CertificateScope::TwoSided.label(), "two-sided");
        assert_eq!(
            format!("{}", CertificateScope::LowerBoundOnly),
            "lower-bound-only"
        );
        assert_eq!(CertificateScope::default(), CertificateScope::TwoSided);
    }

    #[test]
    fn restriction_classification_matches_the_family() {
        assert!(AttackScenario::Optimal.is_action_restriction());
        assert!(AttackScenario::LeadStubborn.is_action_restriction());
        assert!(AttackScenario::EqualForkStubborn.is_action_restriction());
        assert!(AttackScenario::TrailStubborn { lag: 4 }.is_action_restriction());
        assert!(!AttackScenario::HonestMining.is_action_restriction());
    }
}
