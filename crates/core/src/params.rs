//! Attack and system-model parameters (Section 3.2, "Model parameters").

use crate::SelfishMiningError;

/// Validates that a probability-like parameter (`p`, `gamma`, …) is finite
/// and lies in `[0, 1]`.
///
/// Shared by [`AttackParams::validate`], the sweep engine's up-front grid
/// validation and the query service's request validation, so every entry
/// point rejects `NaN`/out-of-range shares with the same typed error before
/// any solver work starts. Delegates to `sm_chain::validate_share` — the
/// canonical check also guarding the arrival-source constructors — so the
/// chain and model layers reject exactly the same inputs with the same
/// wording.
///
/// # Errors
///
/// Returns [`SelfishMiningError::InvalidParameter`] naming the offending
/// parameter when the value is `NaN`, infinite or outside `[0, 1]`.
pub fn validate_share(name: &'static str, value: f64) -> Result<(), SelfishMiningError> {
    sm_chain::validate_share(name, value)?;
    Ok(())
}

/// Validates that a certificate width `ε` is finite and strictly positive.
///
/// # Errors
///
/// Returns [`SelfishMiningError::InvalidParameter`] when `ε` is `NaN`,
/// infinite, zero or negative — a non-finite width would make every
/// Dinkelbach bracket test vacuous and the iteration non-terminating.
pub fn validate_epsilon(value: f64) -> Result<(), SelfishMiningError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(SelfishMiningError::InvalidParameter {
            name: "epsilon",
            constraint: "must be finite and strictly positive",
        });
    }
    Ok(())
}

/// Parameters of the selfish-mining attack MDP.
///
/// * `p` — relative resource of the adversary, the fraction of the total
///   mining resource (stake / space / space-time) the coalition controls.
/// * `gamma` — switching probability: the probability that honest miners
///   adopt a newly revealed adversarial chain when it ties with the public
///   chain.
/// * `depth` (the paper's `d`) — attack depth: the adversary grows private
///   forks rooted at each of the last `d` blocks of the main chain.
/// * `forks_per_block` (the paper's `f`) — number of private fork slots per
///   main-chain block.
/// * `max_fork_length` (the paper's `l`) — maximal length of a private fork,
///   which keeps the MDP finite.
///
/// # Example
///
/// ```
/// use selfish_mining::AttackParams;
///
/// let params = AttackParams::new(0.3, 0.5, 2, 2, 4).unwrap();
/// assert_eq!(params.depth, 2);
/// assert!(AttackParams::new(1.5, 0.5, 2, 2, 4).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackParams {
    /// Relative resource of the adversary, `p ∈ [0, 1]`.
    pub p: f64,
    /// Switching probability, `γ ∈ [0, 1]`.
    pub gamma: f64,
    /// Attack depth `d ≥ 1`.
    pub depth: usize,
    /// Forking number `f ≥ 1` (private forks per main-chain block).
    pub forks_per_block: usize,
    /// Maximal private fork length `l ≥ 1`.
    pub max_fork_length: usize,
}

impl AttackParams {
    /// Creates and validates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] if `p` or `gamma` lie
    /// outside `[0, 1]` or any of the structural parameters is zero.
    pub fn new(
        p: f64,
        gamma: f64,
        depth: usize,
        forks_per_block: usize,
        max_fork_length: usize,
    ) -> Result<Self, SelfishMiningError> {
        let params = AttackParams {
            p,
            gamma,
            depth,
            forks_per_block,
            max_fork_length,
        };
        params.validate()?;
        Ok(params)
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// See [`AttackParams::new`].
    pub fn validate(&self) -> Result<(), SelfishMiningError> {
        validate_share("p", self.p)?;
        validate_share("gamma", self.gamma)?;
        if self.depth == 0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "depth",
                constraint: "must be at least 1",
            });
        }
        if self.forks_per_block == 0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "forks_per_block",
                constraint: "must be at least 1",
            });
        }
        if self.max_fork_length == 0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "max_fork_length",
                constraint: "must be at least 1",
            });
        }
        Ok(())
    }

    /// The paper's experimental default: `l = 4` and the given `(d, f)`.
    ///
    /// # Errors
    ///
    /// Same as [`AttackParams::new`].
    pub fn paper_configuration(
        p: f64,
        gamma: f64,
        depth: usize,
        forks_per_block: usize,
    ) -> Result<Self, SelfishMiningError> {
        AttackParams::new(p, gamma, depth, forks_per_block, 4)
    }

    /// Upper bound on the number of states of the full (unreduced) product
    /// state space `(l+1)^{d·f} · 2^{d−1} · 3`, saturating at [`u128::MAX`].
    /// The reachable state space constructed by the model builder is usually
    /// much smaller.
    ///
    /// Exponents that do not fit a `u32` saturate the bound instead of being
    /// truncated: the historical `(d · f) as u32` cast silently wrapped for
    /// adversarial inputs (e.g. `d = 2³² + 2, f = 1` reported the bound of
    /// `d = 2`), turning an over-approximation into an under-approximation.
    pub fn state_space_upper_bound(&self) -> u128 {
        let fork_exponent = self
            .depth
            .checked_mul(self.forks_per_block)
            .and_then(|cells| u32::try_from(cells).ok());
        let fork_configs = fork_exponent
            .and_then(|exponent| (self.max_fork_length as u128 + 1).checked_pow(exponent))
            .unwrap_or(u128::MAX);
        let owner_configs = u32::try_from(self.depth.saturating_sub(1))
            .ok()
            .and_then(|exponent| 2u128.checked_pow(exponent))
            .unwrap_or(u128::MAX);
        fork_configs.saturating_mul(owner_configs).saturating_mul(3)
    }
}

impl Default for AttackParams {
    /// The smallest interesting configuration from the paper's grid:
    /// `p = 0.3`, `γ = 0.5`, `d = 2`, `f = 1`, `l = 4`.
    fn default() -> Self {
        AttackParams {
            p: 0.3,
            gamma: 0.5,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_grid_configurations() {
        for &(d, f) in &[(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)] {
            for &gamma in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                assert!(AttackParams::paper_configuration(0.3, gamma, d, f).is_ok());
            }
        }
    }

    #[test]
    fn rejects_out_of_range_probabilities() {
        assert!(AttackParams::new(-0.1, 0.5, 1, 1, 1).is_err());
        assert!(AttackParams::new(1.1, 0.5, 1, 1, 1).is_err());
        assert!(AttackParams::new(0.3, -0.5, 1, 1, 1).is_err());
        assert!(AttackParams::new(0.3, 2.0, 1, 1, 1).is_err());
        assert!(AttackParams::new(f64::NAN, 0.5, 1, 1, 1).is_err());
    }

    #[test]
    fn rejects_zero_structural_parameters() {
        assert!(AttackParams::new(0.3, 0.5, 0, 1, 1).is_err());
        assert!(AttackParams::new(0.3, 0.5, 1, 0, 1).is_err());
        assert!(AttackParams::new(0.3, 0.5, 1, 1, 0).is_err());
    }

    #[test]
    fn state_space_bound_matches_manual_computation() {
        let params = AttackParams::new(0.3, 0.5, 2, 2, 4).unwrap();
        // (4+1)^(2*2) * 2^(2-1) * 3 = 625 * 2 * 3 = 3750
        assert_eq!(params.state_space_upper_bound(), 3750);
    }

    #[test]
    fn default_is_valid() {
        assert!(AttackParams::default().validate().is_ok());
    }

    #[test]
    fn share_and_epsilon_helpers_reject_non_finite_inputs() {
        assert!(validate_share("p", 0.0).is_ok());
        assert!(validate_share("p", 1.0).is_ok());
        assert!(validate_share("gamma", f64::NAN).is_err());
        assert!(validate_share("gamma", f64::INFINITY).is_err());
        assert!(validate_share("p", -0.001).is_err());
        assert!(validate_epsilon(1e-4).is_ok());
        assert!(validate_epsilon(0.0).is_err());
        assert!(validate_epsilon(-1e-4).is_err());
        assert!(validate_epsilon(f64::NAN).is_err());
        assert!(validate_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn state_space_bound_saturates_for_huge_exponents() {
        // A merely-large exponent already saturates through checked_pow.
        let large = AttackParams {
            depth: 5_000,
            ..AttackParams::default()
        };
        assert_eq!(large.state_space_upper_bound(), u128::MAX);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn state_space_bound_saturates_at_the_u32_wrap_boundary() {
        // Regression: `d · f = 2³² + 2` used to be cast `as u32`, wrapping to
        // an exponent of 2 and reporting the tiny bound of `d = 2` — an
        // under-approximation. It must saturate instead.
        let wrapped = AttackParams {
            depth: (1usize << 32) + 2,
            forks_per_block: 1,
            ..AttackParams::default()
        };
        assert_eq!(wrapped.state_space_upper_bound(), u128::MAX);
        // `d · f` overflowing usize itself saturates too.
        let overflowing = AttackParams {
            depth: usize::MAX,
            forks_per_block: 2,
            ..AttackParams::default()
        };
        assert_eq!(overflowing.state_space_upper_bound(), u128::MAX);
    }
}
