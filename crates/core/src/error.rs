//! Error type for the selfish-mining model and analysis.

use sm_chain::ChainError;
use sm_markov::MarkovError;
use sm_mdp::MdpError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or analysing the selfish-mining MDP.
#[derive(Debug, Clone, PartialEq)]
pub enum SelfishMiningError {
    /// A model or attack parameter violates its constraint.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// The reachable state space exceeds the configured limit.
    StateSpaceTooLarge {
        /// Number of states discovered before giving up.
        discovered: usize,
        /// The configured limit.
        limit: usize,
    },
    /// An action was applied in a state where it is not available.
    UnavailableAction {
        /// Debug rendering of the state.
        state: String,
        /// Debug rendering of the action.
        action: String,
    },
    /// The binary search of Algorithm 1 failed to bracket the optimum, which
    /// indicates an inconsistent solver result.
    BracketingFailure {
        /// The lower end of the bracket.
        beta_low: f64,
        /// The upper end of the bracket.
        beta_up: f64,
    },
    /// An iterative analysis procedure exhausted its iteration budget before
    /// reaching the requested precision.
    ConvergenceFailure {
        /// The procedure that failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An underlying MDP computation failed.
    Mdp(MdpError),
    /// An underlying Markov-chain computation failed.
    Markov(MarkovError),
}

impl fmt::Display for SelfishMiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelfishMiningError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} violates constraint: {constraint}")
            }
            SelfishMiningError::StateSpaceTooLarge { discovered, limit } => write!(
                f,
                "reachable state space exceeds limit ({discovered} discovered, limit {limit})"
            ),
            SelfishMiningError::UnavailableAction { state, action } => {
                write!(f, "action {action} is not available in state {state}")
            }
            SelfishMiningError::BracketingFailure { beta_low, beta_up } => write!(
                f,
                "binary search failed to bracket the optimum (beta in [{beta_low}, {beta_up}])"
            ),
            SelfishMiningError::ConvergenceFailure { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            SelfishMiningError::Mdp(err) => write!(f, "MDP error: {err}"),
            SelfishMiningError::Markov(err) => write!(f, "markov error: {err}"),
        }
    }
}

impl Error for SelfishMiningError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SelfishMiningError::Mdp(err) => Some(err),
            SelfishMiningError::Markov(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MdpError> for SelfishMiningError {
    fn from(err: MdpError) -> Self {
        SelfishMiningError::Mdp(err)
    }
}

impl From<MarkovError> for SelfishMiningError {
    fn from(err: MarkovError) -> Self {
        SelfishMiningError::Markov(err)
    }
}

impl From<ChainError> for SelfishMiningError {
    /// Lifts a chain-layer parameter error into the model layer. The chain
    /// error carries the same `(name, constraint)` shape and wording, so the
    /// conversion is lossless.
    fn from(err: ChainError) -> Self {
        match err {
            ChainError::InvalidParameter { name, constraint } => {
                SelfishMiningError::InvalidParameter { name, constraint }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let err = SelfishMiningError::StateSpaceTooLarge {
            discovered: 1000,
            limit: 500,
        };
        assert!(err.to_string().contains("1000"));
        assert!(err.to_string().contains("500"));
    }

    #[test]
    fn convergence_failure_reports_method_and_budget() {
        let err = SelfishMiningError::ConvergenceFailure {
            method: "dinkelbach",
            iterations: 200,
        };
        let rendered = err.to_string();
        assert!(rendered.contains("dinkelbach") && rendered.contains("200"));
    }

    #[test]
    fn conversions_set_source() {
        let err: SelfishMiningError = MdpError::EmptyModel.into();
        assert!(Error::source(&err).is_some());
        let err: SelfishMiningError = MarkovError::EmptyChain.into();
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn chain_errors_lift_losslessly() {
        let err: SelfishMiningError = ChainError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1]",
        }
        .into();
        assert_eq!(
            err,
            SelfishMiningError::InvalidParameter {
                name: "p",
                constraint: "must lie in [0, 1]",
            }
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SelfishMiningError>();
    }
}
