//! Construction of the finite MDP from the selfish-mining transition system.
//!
//! The builder explores the set of states reachable from the initial state
//! under *any* strategy (breadth-first over [`crate::available_actions`] and
//! [`crate::successors`]) and assembles:
//!
//! * an [`sm_mdp::Mdp`] whose states are indices into the discovered state
//!   list — BFS discoveries are streamed straight into the flat CSR arena
//!   ([`sm_mdp::CsrMdpBuilder`]) with no intermediate nested staging,
//! * the two base reward structures `r_A` (adversarial blocks finalized) and
//!   `r_H` (honest blocks finalized) of Section 3.3, stored as expected
//!   per-action rewards in flat buffers aligned with the same arena, which is
//!   all the mean-payoff machinery needs.

use crate::{
    available_actions_in, successors_in, AttackParams, AttackScenario, SelfishMiningError,
    SmAction, SmState,
};
use sm_mdp::{CsrMdpBuilder, Mdp, PositionalStrategy, TransitionRewards};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default cap on the number of reachable states the builder will enumerate
/// before giving up. The largest configuration evaluated in the paper
/// (`d = 4`, `f = 2`, `l = 4`) stays below ten million states.
pub const DEFAULT_STATE_LIMIT: usize = 12_000_000;

/// The fully constructed selfish-mining MDP together with its reward
/// structures and the mapping back to structured states.
///
/// The state and action tables are behind [`Arc`]s: every `(p, γ)`
/// instantiation of one [`crate::ParametricModel`] shares them (the reachable
/// structure depends only on `(d, f, l)`), so cloning or re-instantiating a
/// model never copies the structured state space.
#[derive(Debug, Clone)]
pub struct SelfishMiningModel {
    pub(crate) params: AttackParams,
    pub(crate) scenario: AttackScenario,
    pub(crate) mdp: Mdp,
    pub(crate) states: Arc<Vec<SmState>>,
    pub(crate) actions: Arc<Vec<Vec<SmAction>>>,
    pub(crate) adversary_rewards: TransitionRewards,
    pub(crate) honest_rewards: TransitionRewards,
}

impl SelfishMiningModel {
    /// Builds the model for the given parameters with the default state-space
    /// limit.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::StateSpaceTooLarge`] if the reachable
    /// state space exceeds the limit, and propagates transition or MDP
    /// construction errors.
    pub fn build(params: &AttackParams) -> Result<Self, SelfishMiningError> {
        Self::build_with_limit(params, DEFAULT_STATE_LIMIT)
    }

    /// Builds the model with an explicit cap on the number of reachable
    /// states.
    ///
    /// # Errors
    ///
    /// See [`SelfishMiningModel::build`].
    pub fn build_with_limit(
        params: &AttackParams,
        state_limit: usize,
    ) -> Result<Self, SelfishMiningError> {
        Self::build_scenario_with_limit(params, AttackScenario::Optimal, state_limit)
    }

    /// Builds the model of a restricted attack scenario: the breadth-first
    /// exploration runs over the scenario's admissible action set (and, for
    /// scenarios with a transition filter, its restricted mining split), so
    /// the constructed MDP *is* the scenario's sub-model — no post-hoc
    /// masking. [`AttackScenario::Optimal`] reproduces
    /// [`SelfishMiningModel::build`] exactly.
    ///
    /// # Errors
    ///
    /// See [`SelfishMiningModel::build`].
    pub fn build_scenario(
        params: &AttackParams,
        scenario: AttackScenario,
    ) -> Result<Self, SelfishMiningError> {
        Self::build_scenario_with_limit(params, scenario, DEFAULT_STATE_LIMIT)
    }

    /// [`SelfishMiningModel::build_scenario`] with an explicit state-space
    /// limit.
    ///
    /// # Errors
    ///
    /// See [`SelfishMiningModel::build`].
    pub fn build_scenario_with_limit(
        params: &AttackParams,
        scenario: AttackScenario,
        state_limit: usize,
    ) -> Result<Self, SelfishMiningError> {
        params.validate()?;
        let initial = SmState::initial(params);

        let mut index_of: HashMap<SmState, usize> = HashMap::new();
        let mut states: Vec<SmState> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        index_of.insert(initial.clone(), 0);
        states.push(initial);
        queue.push_back(0);

        // BFS pops states in index order, which is exactly the append order
        // the streaming CSR builder wants: every discovered action goes
        // straight into the flat arena, with the expected per-action block
        // counts accumulated alongside in flat per-pair buffers. There is no
        // intermediate nested outcome staging.
        let mut builder = CsrMdpBuilder::new();
        let mut actions: Vec<Vec<SmAction>> = Vec::new();
        let mut expected_adv: Vec<f64> = Vec::new();
        let mut expected_hon: Vec<f64> = Vec::new();
        let mut entries: Vec<(usize, f64)> = Vec::new();

        while let Some(index) = queue.pop_front() {
            let begun = builder.begin_state();
            debug_assert_eq!(begun, index);
            let state = states[index].clone();
            let state_actions = available_actions_in(&scenario, params, &state);
            for action in &state_actions {
                let outs = successors_in(&scenario, params, &state, action)?;
                entries.clear();
                let mut adv = 0.0;
                let mut hon = 0.0;
                for out in outs {
                    let target = match index_of.get(&out.state) {
                        Some(&existing) => existing,
                        None => {
                            let new_index = states.len();
                            if new_index >= state_limit {
                                return Err(SelfishMiningError::StateSpaceTooLarge {
                                    discovered: new_index + 1,
                                    limit: state_limit,
                                });
                            }
                            index_of.insert(out.state.clone(), new_index);
                            states.push(out.state);
                            queue.push_back(new_index);
                            new_index
                        }
                    };
                    entries.push((target, out.probability));
                    adv += out.probability * f64::from(out.rewards.adversary);
                    hon += out.probability * f64::from(out.rewards.honest);
                }
                builder.add_action(&action.name(), &entries)?;
                expected_adv.push(adv);
                expected_hon.push(hon);
            }
            actions.push(state_actions);
        }

        let mdp = builder.finish(0)?;
        let adversary_rewards = TransitionRewards::from_pair_values(&mdp, &expected_adv)?;
        let honest_rewards = TransitionRewards::from_pair_values(&mdp, &expected_hon)?;

        Ok(SelfishMiningModel {
            params: *params,
            scenario,
            mdp,
            states: Arc::new(states),
            actions: Arc::new(actions),
            adversary_rewards,
            honest_rewards,
        })
    }

    /// The parameters the model was built for.
    pub fn params(&self) -> &AttackParams {
        &self.params
    }

    /// The attack scenario the model was built for
    /// ([`AttackScenario::Optimal`] for the plain builders).
    pub fn scenario(&self) -> AttackScenario {
        self.scenario
    }

    /// The underlying MDP.
    pub fn mdp(&self) -> &Mdp {
        &self.mdp
    }

    /// Number of reachable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The structured state corresponding to an MDP state index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn state(&self, index: usize) -> &SmState {
        &self.states[index]
    }

    /// The structured action corresponding to an MDP `(state, action)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn action(&self, state: usize, action: usize) -> &SmAction {
        &self.actions[state][action]
    }

    /// The actions available in an MDP state, in the same order as the MDP's
    /// action indices.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn actions_of(&self, state: usize) -> &[SmAction] {
        &self.actions[state]
    }

    /// The full structured state table, in MDP index order.
    pub(crate) fn states_slice(&self) -> &[SmState] {
        &self.states
    }

    /// The full per-state action table, in MDP index order.
    pub(crate) fn actions_slice(&self) -> &[Vec<SmAction>] {
        &self.actions
    }

    /// Reward structure `r_A`: expected number of adversary blocks finalized
    /// per state-action pair.
    pub fn adversary_rewards(&self) -> &TransitionRewards {
        &self.adversary_rewards
    }

    /// Reward structure `r_H`: expected number of honest blocks finalized per
    /// state-action pair.
    pub fn honest_rewards(&self) -> &TransitionRewards {
        &self.honest_rewards
    }

    /// The reward structure `r_β = r_A − β · (r_A + r_H)` of Section 3.3.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (which cannot occur for structures built by
    /// this model).
    pub fn beta_rewards(&self, beta: f64) -> Result<TransitionRewards, SelfishMiningError> {
        let total = self.adversary_rewards.sum(&self.honest_rewards)?;
        Ok(self
            .adversary_rewards
            .affine_combination(&total, 1.0, -beta)?)
    }

    /// The expected relative revenue of a *fixed* positional strategy,
    /// computed from the gains of the induced chain:
    /// `ERRev(σ) = g_A(σ) / (g_A(σ) + g_H(σ))`.
    ///
    /// The gains are evaluated with sparse iterative sweeps — one fused pass
    /// for both reward functions ([`sm_markov::iterative_gains`]) — so that
    /// the evaluation scales to the larger attack configurations, where dense
    /// policy evaluation would be prohibitive.
    ///
    /// # Errors
    ///
    /// Propagates policy-evaluation errors.
    pub fn expected_relative_revenue(
        &self,
        strategy: &PositionalStrategy,
    ) -> Result<f64, SelfishMiningError> {
        self.expected_relative_revenue_seeded(strategy, None)
            .map(|(revenue, _)| revenue)
    }

    /// [`SelfishMiningModel::expected_relative_revenue`] warm-started from
    /// the bias vectors of a previous evaluation (on a similar strategy
    /// and/or neighbouring parameters), returning the converged bias vectors
    /// for the next call. This is the evaluation hot path of the sweep
    /// engine; any seed is *valid* (mis-shaped ones are simply ignored), it
    /// only affects the sweep count.
    ///
    /// # Errors
    ///
    /// Propagates policy-evaluation errors.
    pub fn expected_relative_revenue_seeded(
        &self,
        strategy: &PositionalStrategy,
        seed: Option<&[Vec<f64>]>,
    ) -> Result<(f64, Vec<Vec<f64>>), SelfishMiningError> {
        self.expected_relative_revenue_seeded_with(
            strategy,
            seed,
            sm_mdp::SolverParallelism::serial(),
        )
    }

    /// [`SelfishMiningModel::expected_relative_revenue_seeded`] with
    /// row-block parallel chain sweeps
    /// ([`sm_markov::iterative_gains_seeded_with`]): the returned revenue and
    /// bias vectors are bit-identical for any thread count, the knob only
    /// trades wall-clock time for cores.
    ///
    /// # Errors
    ///
    /// Propagates policy-evaluation errors.
    pub fn expected_relative_revenue_seeded_with(
        &self,
        strategy: &PositionalStrategy,
        seed: Option<&[Vec<f64>]>,
        parallelism: sm_mdp::SolverParallelism,
    ) -> Result<(f64, Vec<Vec<f64>>), SelfishMiningError> {
        let chain = self.mdp.induced_chain(strategy)?;
        let r_adv = self
            .adversary_rewards
            .strategy_rewards(&self.mdp, strategy)?;
        let r_hon = self.honest_rewards.strategy_rewards(&self.mdp, strategy)?;
        let (gains, bias) = sm_markov::iterative_gains_seeded_with(
            &chain,
            &[&r_adv, &r_hon],
            1e-9,
            5_000_000,
            seed,
            parallelism,
        )?;
        let (adv, hon) = (gains[0], gains[1]);
        if adv + hon <= 0.0 {
            // Blocks are finalized with positive rate under every strategy
            // (honest miners alone guarantee it), so this indicates a
            // numerical problem rather than a legitimate value.
            return Err(SelfishMiningError::BracketingFailure {
                beta_low: adv,
                beta_up: hon,
            });
        }
        Ok((adv / (adv + hon), bias))
    }

    /// Renders a positional strategy as a list of `(state, action)` pairs in
    /// the structured vocabulary of the attack, restricted to states where the
    /// strategy chooses something other than `mine`. Useful for inspecting
    /// computed attacks.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] if the strategy does
    /// not cover every model state or selects an action index outside a
    /// state's action list. (The historical version panicked on a
    /// too-short strategy — a panic reachable from user-supplied data.)
    pub fn describe_strategy(
        &self,
        strategy: &PositionalStrategy,
    ) -> Result<Vec<(String, String)>, SelfishMiningError> {
        if strategy.num_states() != self.num_states() {
            return Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                constraint: "must cover every state of the model it describes",
            });
        }
        let mut releases = Vec::new();
        for s in 0..self.num_states() {
            let action_idx = strategy.action(s);
            let Some(action) = self.actions[s].get(action_idx) else {
                return Err(SelfishMiningError::InvalidParameter {
                    name: "strategy",
                    constraint: "selects an action index outside the state's action list",
                });
            };
            if action.is_release() {
                releases.push((self.states[s].to_string(), action.to_string()));
            }
        }
        Ok(releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn build(p: f64, gamma: f64, d: usize, f: usize, l: usize) -> SelfishMiningModel {
        let params = AttackParams::new(p, gamma, d, f, l).unwrap();
        SelfishMiningModel::build(&params).unwrap()
    }

    #[test]
    fn smallest_model_has_expected_structure() {
        let model = build(0.3, 0.5, 1, 1, 2);
        // States: forks ∈ {0,1,2}, phases ∈ {mining, honest, adversary}; not
        // every combination is reachable but the model must stay within the
        // product bound.
        assert!(model.num_states() <= 9);
        assert!(model.num_states() >= 5);
        assert_eq!(model.mdp().initial_state(), 0);
        assert_eq!(model.state(0), &SmState::initial(model.params()));
        // Every state's action list matches the MDP's.
        for s in 0..model.num_states() {
            assert_eq!(model.actions_of(s).len(), model.mdp().num_actions(s));
        }
    }

    #[test]
    fn model_size_matches_paper_order_of_magnitude_for_small_configs() {
        let model = build(0.3, 0.5, 2, 1, 4);
        assert!(model.num_states() < 200, "got {}", model.num_states());
        let model = build(0.3, 0.5, 2, 2, 4);
        assert!(model.num_states() < 4000, "got {}", model.num_states());
    }

    #[test]
    fn rewards_are_nonnegative_and_bounded_by_l() {
        let model = build(0.3, 0.5, 2, 2, 3);
        let mdp = model.mdp();
        for s in 0..mdp.num_states() {
            for a in 0..mdp.num_actions(s) {
                let adv = model.adversary_rewards().expected_reward(mdp, s, a);
                let hon = model.honest_rewards().expected_reward(mdp, s, a);
                assert!(adv >= 0.0 && hon >= 0.0);
                assert!(adv + hon <= model.params().max_fork_length as f64 + 1.0);
            }
        }
    }

    #[test]
    fn state_limit_is_enforced() {
        let params = AttackParams::new(0.3, 0.5, 2, 2, 4).unwrap();
        let err = SelfishMiningModel::build_with_limit(&params, 10).unwrap_err();
        assert!(matches!(err, SelfishMiningError::StateSpaceTooLarge { .. }));
    }

    #[test]
    fn beta_rewards_interpolate_between_extremes() {
        let model = build(0.3, 0.5, 1, 1, 2);
        let mdp = model.mdp();
        let r0 = model.beta_rewards(0.0).unwrap();
        let r1 = model.beta_rewards(1.0).unwrap();
        for s in 0..mdp.num_states() {
            for a in 0..mdp.num_actions(s) {
                let adv = model.adversary_rewards().expected_reward(mdp, s, a);
                let hon = model.honest_rewards().expected_reward(mdp, s, a);
                assert!((r0.expected_reward(mdp, s, a) - adv).abs() < 1e-12);
                assert!((r1.expected_reward(mdp, s, a) + hon).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn always_mine_strategy_has_revenue_between_zero_and_one() {
        let model = build(0.25, 0.5, 2, 1, 3);
        // The all-first-action strategy is "always mine" because `mine` is
        // always the first available action.
        let mine_everywhere = PositionalStrategy::uniform_first_action(model.num_states());
        for s in 0..model.num_states() {
            assert_eq!(model.action(s, 0), &SmAction::Mine);
        }
        let errev = model.expected_relative_revenue(&mine_everywhere).unwrap();
        assert!((0.0..=1.0).contains(&errev), "errev = {errev}");
    }

    #[test]
    fn honest_and_adversary_phases_are_reachable() {
        let model = build(0.3, 0.5, 2, 1, 3);
        let mut phases = std::collections::HashSet::new();
        for s in 0..model.num_states() {
            phases.insert(model.state(s).phase);
        }
        assert!(phases.contains(&Phase::Mining));
        assert!(phases.contains(&Phase::HonestFound));
        assert!(phases.contains(&Phase::AdversaryFound));
    }

    #[test]
    fn describe_strategy_lists_only_releases() {
        let model = build(0.3, 0.5, 1, 1, 2);
        let mut strategy = PositionalStrategy::uniform_first_action(model.num_states());
        // Force a release wherever one is available.
        for s in 0..model.num_states() {
            if model.actions_of(s).len() > 1 {
                strategy.set_action(s, 1);
            }
        }
        let description = model.describe_strategy(&strategy).unwrap();
        assert!(!description.is_empty());
        assert!(description.iter().all(|(_, a)| a.starts_with("release")));
    }

    #[test]
    fn describe_strategy_rejects_misshapen_strategies() {
        // Regression: both misshapes used to panic (short strategies via
        // indexing) or be skipped silently (out-of-range action indices).
        let model = build(0.3, 0.5, 1, 1, 2);
        let short = PositionalStrategy::uniform_first_action(model.num_states() - 1);
        assert!(matches!(
            model.describe_strategy(&short),
            Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                ..
            })
        ));
        let mut out_of_range = PositionalStrategy::uniform_first_action(model.num_states());
        out_of_range.set_action(0, 99);
        assert!(matches!(
            model.describe_strategy(&out_of_range),
            Err(SelfishMiningError::InvalidParameter {
                name: "strategy",
                ..
            })
        ));
    }

    #[test]
    fn scenario_models_restrict_the_optimal_model() {
        let params = AttackParams::new(0.3, 0.5, 2, 1, 4).unwrap();
        let optimal = SelfishMiningModel::build(&params).unwrap();
        assert_eq!(optimal.scenario(), crate::AttackScenario::Optimal);
        for scenario in [
            crate::AttackScenario::LeadStubborn,
            crate::AttackScenario::EqualForkStubborn,
            crate::AttackScenario::TrailStubborn { lag: 0 },
        ] {
            let restricted = SelfishMiningModel::build_scenario(&params, scenario).unwrap();
            assert_eq!(restricted.scenario(), scenario);
            assert!(restricted.num_states() <= optimal.num_states());
            assert!(
                restricted.mdp().num_state_action_pairs() <= optimal.mdp().num_state_action_pairs()
            );
            restricted.mdp().validate().unwrap();
        }
        // The honest scenario is a tiny degenerate chain.
        let honest =
            SelfishMiningModel::build_scenario(&params, crate::AttackScenario::HonestMining)
                .unwrap();
        assert!(honest.num_states() < optimal.num_states() / 2);
        honest.mdp().validate().unwrap();
    }
}
