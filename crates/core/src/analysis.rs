//! The formal analysis procedure of Section 3.3 (Algorithm 1).
//!
//! Given a precision parameter `ε > 0`, the procedure computes an `ε`-tight
//! lower bound on the optimal expected relative revenue `ERRev*` together with
//! a strategy achieving it, by binary-searching over `β ∈ [0, 1]` and solving
//! the mean-payoff MDP with reward `r_β = r_A − β (r_A + r_H)` at every step
//! (Theorem 3.1: `MP*_β = 0` iff `β = ERRev*`, and `MP*_β` is monotonically
//! non-increasing in `β`).
//!
//! Besides the paper-faithful bisection, [`AnalysisProcedure::solve_dinkelbach`]
//! implements a Dinkelbach-style acceleration that converges in far fewer
//! mean-payoff solves and is used by the benchmark harness as an ablation of
//! the search strategy; both return the same value up to the precision.

use crate::{SelfishMiningError, SelfishMiningModel};
use sm_mdp::{
    MeanPayoffMethod, MeanPayoffSolver, PositionalStrategy, SolverParallelism, SweepKernel,
};

/// Iteration cap of the Dinkelbach-style acceleration. Each iteration
/// strictly increases `β` towards the fixed point `ERRev*`, so well-behaved
/// instances converge in a handful of iterations; the cap only guards
/// against a broken inner solver.
const DINKELBACH_ITERATION_LIMIT: usize = 200;

/// Configuration of the analysis procedure.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// The paper's precision parameter `ε`: on termination
    /// `β_up − β_low < ε` and the returned value is an `ε`-tight lower bound.
    pub epsilon: f64,
    /// Mean-payoff solver used for the inner optimisations.
    pub solver: MeanPayoffMethod,
    /// Tolerance below which an inner mean payoff is considered zero when the
    /// certified interval straddles zero (guards the sign test against solver
    /// precision).
    pub zero_tolerance: f64,
    /// Intra-solve parallelism: how many threads each inner mean-payoff
    /// solve and each revenue evaluation may fan its Bellman/chain sweeps
    /// over. Results are **bit-identical for any setting** (the sweeps are
    /// Jacobi iterations over disjoint row blocks with block-ordered
    /// statistic folds); the knob only trades wall-clock time for cores.
    /// Defaults to serial — the `sm-sweep` engine raises it per job from its
    /// global thread budget.
    pub parallelism: SolverParallelism,
    /// Sweep kernel of the inner mean-payoff solves. The certified `β`
    /// bounds come from the pure-Jacobi revenue evaluations and the inner
    /// solvers' full Bellman sweeps regardless of the kernel, so any kernel
    /// yields a valid `ε`-tight bracket; the Gauss-Seidel and prioritized
    /// kernels only change how fast the interleaved accelerator sweeps
    /// contract (see [`sm_mdp::SweepKernel`]).
    pub kernel: SweepKernel,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            epsilon: 1e-3,
            solver: MeanPayoffMethod::ValueIteration { epsilon: 1e-6 },
            zero_tolerance: 1e-9,
            parallelism: SolverParallelism::serial(),
            kernel: SweepKernel::Jacobi,
        }
    }
}

impl AnalysisConfig {
    /// Creates a configuration with the given `ε` and the default inner
    /// solver, choosing the inner precision a couple of orders of magnitude
    /// tighter than `ε` — tight enough that inner-solver noise is invisible
    /// next to `ε` (the sign test additionally consumes the certified gain
    /// interval, so a straddling solve can never flip a bracket), while not
    /// wasting sweeps on precision no consumer observes.
    pub fn with_epsilon(epsilon: f64) -> Self {
        AnalysisConfig {
            epsilon,
            solver: MeanPayoffMethod::ValueIteration {
                epsilon: (epsilon * 1e-2).max(1e-9),
            },
            ..AnalysisConfig::default()
        }
    }

    /// Returns the configuration with the given intra-solve parallelism (see
    /// the [`AnalysisConfig::parallelism`] field).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: SolverParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the configuration with the given inner sweep kernel (see the
    /// [`AnalysisConfig::kernel`] field).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SweepKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Statistics of a single inner mean-payoff solve.
#[derive(Debug, Clone)]
pub struct SolveStep {
    /// The `β` value the MDP was solved for.
    pub beta: f64,
    /// The optimal mean payoff `MP*_β` reported by the solver (midpoint of
    /// the certified interval for value iteration).
    pub mean_payoff: f64,
    /// Certified lower bound on `MP*_β` (equals `mean_payoff` for the exact
    /// solvers).
    pub gain_lower: f64,
    /// Certified upper bound on `MP*_β` (equals `mean_payoff` for the exact
    /// solvers).
    pub gain_upper: f64,
    /// Number of solver iterations.
    pub iterations: usize,
}

/// Warm-start state carried between consecutive Dinkelbach analyses of *the
/// same model family at neighbouring parameter points* (see
/// [`AnalysisProcedure::solve_dinkelbach_warm`]).
#[derive(Debug, Clone)]
pub struct DinkelbachWarmStart {
    /// Starting `β` for the iteration — ideally a good guess of the target
    /// instance's `ERRev*`, e.g. the (extrapolated) revenue of the analysis
    /// at a neighbouring `p`. Any value in `[0, 1]` is *safe*: an undershoot
    /// keeps the textbook monotone ascent, and after an overshoot the first
    /// iteration returns the exact revenue of an achievable strategy (a true
    /// lower bound), from which the ascent resumes — the termination test
    /// `|revenue − β| < ε` brackets `ERRev*` within `ε` in both cases.
    pub beta: f64,
    /// Bias vector seeding the first inner relative-value-iteration solve
    /// (ignored, and returned empty, for the exact inner solvers). An empty
    /// vector means "start cold".
    pub bias: Vec<f64>,
    /// Bias vectors (one per base reward function) seeding the iterative
    /// revenue evaluations on the induced chains. Empty means "start cold".
    pub evaluation_bias: Vec<Vec<f64>>,
}

/// Result of the analysis: the `ε`-tight lower bound on `ERRev*`, the final
/// bracket, the optimal strategy for `r_{β_low}` and per-step statistics.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// The returned lower bound `ERRev = β_low ∈ [ERRev* − ε, ERRev*]`.
    pub expected_relative_revenue: f64,
    /// Exact expected relative revenue of the returned strategy (computed by
    /// policy evaluation on the induced chain); by Theorem 3.1 this also lies
    /// in `[ERRev* − ε, ERRev*]`.
    pub strategy_revenue: f64,
    /// Final lower end of the binary-search bracket.
    pub beta_low: f64,
    /// Final upper end of the binary-search bracket.
    pub beta_up: f64,
    /// The `ε`-optimal selfish-mining strategy.
    pub strategy: PositionalStrategy,
    /// Final bias vector of the last inner relative-value-iteration solve —
    /// the witness that lets an *independent* checker re-validate the
    /// certificate with single Jacobi Bellman-residual passes (see the
    /// `sm-audit` crate). Empty when the inner solver is one of the exact
    /// methods (they carry no bias) or when the bisection path terminated
    /// without a seeded solve.
    pub bias: Vec<f64>,
    /// One entry per inner mean-payoff solve.
    pub steps: Vec<SolveStep>,
}

/// The formal analysis procedure (Algorithm 1) and its accelerated variant.
#[derive(Debug, Clone, Default)]
pub struct AnalysisProcedure {
    config: AnalysisConfig,
}

impl AnalysisProcedure {
    /// Creates a procedure with the given configuration.
    pub fn new(config: AnalysisConfig) -> Self {
        AnalysisProcedure { config }
    }

    /// Creates a procedure with precision `ε` and default solver choices.
    pub fn with_epsilon(epsilon: f64) -> Self {
        AnalysisProcedure::new(AnalysisConfig::with_epsilon(epsilon))
    }

    /// The configuration in use.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Algorithm 1: binary search over `β`.
    ///
    /// # Errors
    ///
    /// Returns [`SelfishMiningError::InvalidParameter`] for a non-positive
    /// `ε` and propagates solver errors.
    pub fn solve(&self, model: &SelfishMiningModel) -> Result<AnalysisResult, SelfishMiningError> {
        if self.config.epsilon.is_nan() || self.config.epsilon <= 0.0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "epsilon",
                constraint: "must be positive",
            });
        }
        let solver = MeanPayoffSolver::new(self.config.solver.clone())
            .with_parallelism(self.config.parallelism)
            .with_kernel(self.config.kernel);
        let mut beta_low: f64 = 0.0;
        let mut beta_up: f64 = 1.0;
        let mut steps = Vec::new();
        // Strategy of the most recent solve that moved the lower end; reused
        // by `finalize` so the bracket's endpoint is never re-solved.
        let mut low_strategy: Option<PositionalStrategy> = None;

        while beta_up - beta_low >= self.config.epsilon {
            let beta = 0.5 * (beta_low + beta_up);
            let rewards = model.beta_rewards(beta)?;
            let result = solver.solve(model.mdp(), &rewards)?;
            steps.push(SolveStep {
                beta,
                mean_payoff: result.gain,
                gain_lower: result.gain_lower,
                gain_upper: result.gain_upper,
                iterations: result.iterations,
            });
            // The inner solver only certifies `MP*_β ∈ [gain_lower,
            // gain_upper]`; move the *upper* end of the bracket only when the
            // whole certified interval clears the zero tolerance. Comparing
            // the point estimate instead (as the pre-fix code did) let a
            // solver-noise sign flip pull `β_up` below the true optimum and
            // invalidate the returned bracket. When the interval straddles
            // zero, `β` is within the certified precision of `ERRev*` and
            // Algorithm 1's `MP_β ≥ 0` branch applies: the lower end moves.
            if result.gain_upper < -self.config.zero_tolerance {
                beta_up = beta;
            } else {
                beta_low = beta;
                low_strategy = Some(result.strategy);
            }
        }

        self.finalize(
            model,
            beta_low,
            beta_up,
            steps,
            low_strategy,
            None,
            Vec::new(),
        )
    }

    /// Dinkelbach-style acceleration: instead of bisecting, the next `β` is
    /// the exact expected relative revenue of the strategy that was optimal
    /// for the current `β`. The iteration is monotone and converges to
    /// `ERRev*`; it terminates once consecutive values differ by less than
    /// `ε` (or the mean payoff at the current `β` is certified zero).
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisProcedure::solve`], plus
    /// [`SelfishMiningError::ConvergenceFailure`] if the iteration cap is
    /// exhausted.
    pub fn solve_dinkelbach(
        &self,
        model: &SelfishMiningModel,
    ) -> Result<AnalysisResult, SelfishMiningError> {
        self.solve_dinkelbach_warm(model, None)
            .map(|(result, _)| result)
    }

    /// [`AnalysisProcedure::solve_dinkelbach`] with warm-start plumbing, the
    /// inner engine of the `(p, γ)` sweep: the iteration starts from
    /// `warm.beta` instead of 0 and the first inner relative-value-iteration
    /// solve is seeded with `warm.bias`; every subsequent inner solve is
    /// seeded with its predecessor's final bias. On success the final
    /// `(β_low, bias)` pair is returned for the next grid point.
    ///
    /// Correctness does not depend on the warm start: any finite bias vector
    /// is a valid RVI starting point, and any `warm.beta` that lower-bounds
    /// the instance's `ERRev*` (e.g. the certified `β_low` at a smaller `p`)
    /// preserves the monotone convergence of the Dinkelbach iteration. The
    /// bias seeding only applies to the
    /// [`MeanPayoffMethod::ValueIteration`] inner solver; the exact solvers
    /// run unseeded and return an empty carry-over bias.
    ///
    /// # Errors
    ///
    /// Same as [`AnalysisProcedure::solve_dinkelbach`].
    pub fn solve_dinkelbach_warm(
        &self,
        model: &SelfishMiningModel,
        warm: Option<&DinkelbachWarmStart>,
    ) -> Result<(AnalysisResult, DinkelbachWarmStart), SelfishMiningError> {
        if self.config.epsilon.is_nan() || self.config.epsilon <= 0.0 {
            return Err(SelfishMiningError::InvalidParameter {
                name: "epsilon",
                constraint: "must be positive",
            });
        }
        let solver = MeanPayoffSolver::new(self.config.solver.clone())
            .with_parallelism(self.config.parallelism)
            .with_kernel(self.config.kernel);
        let mut bias: Vec<f64> = warm.map(|w| w.bias.clone()).unwrap_or_default();
        let mut evaluation_bias: Vec<Vec<f64>> =
            warm.map(|w| w.evaluation_bias.clone()).unwrap_or_default();
        let mut beta = warm.map(|w| w.beta.clamp(0.0, 1.0)).unwrap_or(0.0);
        let mut steps = Vec::new();
        for _ in 0..DINKELBACH_ITERATION_LIMIT {
            let rewards = model.beta_rewards(beta)?;
            let seed = (!bias.is_empty()).then_some(bias.as_slice());
            let (result, carry_bias) = solver.solve_seeded(model.mdp(), &rewards, seed)?;
            bias = carry_bias;
            steps.push(SolveStep {
                beta,
                mean_payoff: result.gain,
                gain_lower: result.gain_lower,
                gain_upper: result.gain_upper,
                iterations: result.iterations,
            });
            let (revenue, eval_bias) = model.expected_relative_revenue_seeded_with(
                &result.strategy,
                Some(&evaluation_bias),
                self.config.parallelism,
            )?;
            evaluation_bias = eval_bias;
            let certified_zero = result.gain_lower >= -self.config.zero_tolerance
                && result.gain_upper <= self.config.zero_tolerance;
            if (revenue - beta).abs() < self.config.epsilon || certified_zero {
                // The strategy in hand is optimal for the final inner solve
                // and `revenue` is its exact value — hand both to `finalize`
                // so the MDP is not solved a second time.
                let analysis = self.finalize(
                    model,
                    revenue.min(1.0),
                    (revenue + self.config.epsilon).min(1.0),
                    steps,
                    Some(result.strategy),
                    Some(revenue),
                    bias.clone(),
                )?;
                let carry = DinkelbachWarmStart {
                    beta: analysis.beta_low,
                    bias,
                    evaluation_bias,
                };
                return Ok((analysis, carry));
            }
            beta = revenue;
        }
        Err(SelfishMiningError::ConvergenceFailure {
            method: "dinkelbach",
            iterations: DINKELBACH_ITERATION_LIMIT,
        })
    }

    /// Assembles the final [`AnalysisResult`]. When the caller already holds
    /// the optimal strategy of its last inner solve (both search variants
    /// do), it is reused directly instead of re-solving the MDP at `β_low` —
    /// the pre-fix code performed that redundant solve and doubled the final
    /// solve cost.
    #[allow(clippy::too_many_arguments)]
    fn finalize(
        &self,
        model: &SelfishMiningModel,
        beta_low: f64,
        beta_up: f64,
        steps: Vec<SolveStep>,
        strategy: Option<PositionalStrategy>,
        strategy_revenue: Option<f64>,
        bias: Vec<f64>,
    ) -> Result<AnalysisResult, SelfishMiningError> {
        if beta_low > beta_up {
            return Err(SelfishMiningError::BracketingFailure { beta_low, beta_up });
        }
        let strategy = match strategy {
            Some(strategy) => strategy,
            None => {
                // Only reachable when no bisection step ever moved the lower
                // end (e.g. ε ≥ 1): solve once at β_low for the strategy.
                let solver = MeanPayoffSolver::new(self.config.solver.clone())
                    .with_parallelism(self.config.parallelism)
                    .with_kernel(self.config.kernel);
                let rewards = model.beta_rewards(beta_low)?;
                solver.solve(model.mdp(), &rewards)?.strategy
            }
        };
        let strategy_revenue = match strategy_revenue {
            Some(revenue) => revenue,
            None => {
                model
                    .expected_relative_revenue_seeded_with(
                        &strategy,
                        None,
                        self.config.parallelism,
                    )?
                    .0
            }
        };
        Ok(AnalysisResult {
            expected_relative_revenue: beta_low,
            strategy_revenue,
            beta_low,
            beta_up,
            strategy,
            bias,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackParams, SelfishMiningModel};

    fn analyse(p: f64, gamma: f64, d: usize, f: usize, l: usize, eps: f64) -> AnalysisResult {
        let params = AttackParams::new(p, gamma, d, f, l).unwrap();
        let model = SelfishMiningModel::build(&params).unwrap();
        AnalysisProcedure::with_epsilon(eps).solve(&model).unwrap()
    }

    #[test]
    fn zero_resource_adversary_earns_nothing() {
        let result = analyse(0.0, 0.5, 1, 1, 2, 1e-3);
        assert!(result.expected_relative_revenue < 1e-3);
        assert!(result.strategy_revenue < 1e-9);
    }

    #[test]
    fn revenue_is_at_least_proportional_share() {
        // Selfish mining can only help: ERRev* ≥ p (the adversary can always
        // emulate near-honest behaviour by releasing immediately).
        let result = analyse(0.2, 0.5, 2, 1, 4, 2e-3);
        assert!(
            result.strategy_revenue >= 0.2 - 5e-3,
            "strategy revenue {} should be at least ~p",
            result.strategy_revenue
        );
        // And the lower bound is consistent with the strategy's exact value.
        assert!(result.expected_relative_revenue <= result.strategy_revenue + 2e-3);
    }

    #[test]
    fn bracket_width_respects_epsilon() {
        let result = analyse(0.3, 0.5, 1, 1, 3, 1e-2);
        assert!(result.beta_up - result.beta_low < 1e-2);
        assert!(result.beta_low <= result.beta_up);
        assert!(!result.steps.is_empty());
    }

    #[test]
    fn higher_gamma_does_not_hurt() {
        let low = analyse(0.3, 0.0, 2, 1, 4, 2e-3);
        let high = analyse(0.3, 1.0, 2, 1, 4, 2e-3);
        assert!(
            high.strategy_revenue >= low.strategy_revenue - 2e-3,
            "gamma=1 revenue {} should be >= gamma=0 revenue {}",
            high.strategy_revenue,
            low.strategy_revenue
        );
    }

    #[test]
    fn dinkelbach_agrees_with_bisection() {
        let params = AttackParams::new(0.3, 0.5, 2, 1, 4).unwrap();
        let model = SelfishMiningModel::build(&params).unwrap();
        let procedure = AnalysisProcedure::with_epsilon(1e-3);
        let bisect = procedure.solve(&model).unwrap();
        let dink = procedure.solve_dinkelbach(&model).unwrap();
        assert!(
            (bisect.strategy_revenue - dink.strategy_revenue).abs() < 5e-3,
            "bisection {} vs dinkelbach {}",
            bisect.strategy_revenue,
            dink.strategy_revenue
        );
        // Dinkelbach needs far fewer inner solves than bisection for small ε.
        assert!(dink.steps.len() <= bisect.steps.len() + 2);
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let params = AttackParams::new(0.3, 0.5, 1, 1, 2).unwrap();
        let model = SelfishMiningModel::build(&params).unwrap();
        let procedure = AnalysisProcedure::new(AnalysisConfig {
            epsilon: 0.0,
            ..AnalysisConfig::default()
        });
        assert!(matches!(
            procedure.solve(&model),
            Err(SelfishMiningError::InvalidParameter { .. })
        ));
    }
}
