//! Discrete-time longest-chain blockchain simulator.
//!
//! The simulator implements the System Model of Section 2.1 of the PODC 2024
//! selfish-mining paper with explicit blocks: honest miners own a `1 − p`
//! share of the resource and always extend the tip of the public chain, while
//! the adversarial coalition owns `p`, may mine on many blocks concurrently
//! (`(p, k)`-mining, provided by `sm-proofs`), withholds blocks in private
//! forks and publishes them according to a pluggable
//! [`AdversaryStrategy`]. Ties between equally long chains are resolved by the
//! switching probability `γ`.
//!
//! The simulator serves as the *empirical cross-check* of the MDP analysis in
//! the `selfish-mining` crate: the expected relative revenue computed by the
//! formal procedure must match the Monte-Carlo estimate obtained by running
//! the corresponding strategy here (see the workspace integration tests).
//!
//! # Example
//!
//! ```
//! use sm_chain::{HonestStrategy, SimulationConfig, Simulator};
//!
//! let config = SimulationConfig { p: 0.3, steps: 20_000, seed: 7, ..SimulationConfig::default() };
//! let report = Simulator::new(config).run(&mut HonestStrategy);
//! // Honest behaviour earns roughly the proportional share.
//! assert!((report.relative_revenue() - 0.3).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod backend;
mod block;
mod error;
mod metrics;
mod simulator;
mod strategy;

pub use arrival::{ArrivalEvent, ArrivalSource, BernoulliSource, PowLotterySource};
pub use backend::{
    ChallengeVisibility, ConsensusBackend, PostLotterySource, SpaceLotterySource,
    StakeLotterySource, VdfLotterySource,
};
pub use block::{BlockId, BlockTree, MinerClass};
pub use error::{validate_share, ChainError};
pub use metrics::SimulationReport;
pub use simulator::{MiningRegime, SimulationConfig, Simulator};
pub use strategy::{
    AdversaryAction, AdversaryStrategy, AdversaryView, HonestStrategy, Sm1Strategy, TableStrategy,
    UnknownViewPolicy,
};
