//! The discrete-time simulation loop.

use crate::{
    AdversaryAction, AdversaryStrategy, AdversaryView, ArrivalEvent, ArrivalSource,
    BernoulliSource, BlockId, BlockTree, MinerClass, SimulationReport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Which block positions the adversary mines on, mirroring the MDP-side
/// transition filter of restricted attack scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MiningRegime {
    /// The paper's `(p, k)`-mining: every open position of the fork window —
    /// each non-empty fork plus one fresh fork per root with a free slot.
    #[default]
    AllSlots,
    /// Honest-behaviour mining: only positions rooted at the public tip.
    /// This is the simulator half of the degenerate honest-mining scenario
    /// (`σ = 1`), whose revenue is the proportional share `p`.
    TipOnly,
}

/// Configuration of a simulation run. The parameters mirror the MDP's
/// [`selfish-mining` attack parameters](https://docs.rs) so that computed
/// strategies can be replayed faithfully.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Relative resource of the adversary.
    pub p: f64,
    /// Switching probability for tie races.
    pub gamma: f64,
    /// Attack depth `d`: the adversary only keeps forks rooted at the last `d`
    /// main-chain blocks.
    pub depth: usize,
    /// Fork slots per main-chain block `f`.
    pub forks_per_block: usize,
    /// Maximal private fork length `l`.
    pub max_fork_length: usize,
    /// Number of discrete time steps to simulate.
    pub steps: usize,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// The positions the adversary mines on ([`MiningRegime::AllSlots`]
    /// unless replaying a scenario with a restricted mining split).
    pub mining: MiningRegime,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            p: 0.3,
            gamma: 0.5,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            steps: 100_000,
            seed: 42,
            mining: MiningRegime::AllSlots,
        }
    }
}

/// The longest-chain simulator.
#[derive(Debug)]
pub struct Simulator {
    config: SimulationConfig,
}

/// Internal mutable simulation state.
struct SimulationState {
    tree: BlockTree,
    public_tip: BlockId,
    /// Private forks keyed by their root block; each root has
    /// `forks_per_block` slots, each a path of adversary blocks.
    forks: HashMap<BlockId, Vec<Vec<BlockId>>>,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `gamma` lie outside `[0, 1]` or a structural parameter
    /// is zero.
    pub fn new(config: SimulationConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.p), "p must lie in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&config.gamma),
            "gamma must lie in [0, 1]"
        );
        assert!(config.depth > 0, "depth must be positive");
        assert!(
            config.forks_per_block > 0,
            "forks_per_block must be positive"
        );
        assert!(
            config.max_fork_length > 0,
            "max_fork_length must be positive"
        );
        Simulator { config }
    }

    /// The configuration of this simulator.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the simulation with the given adversary strategy and returns the
    /// measured report.
    ///
    /// Blocks arrive through the ideal [`BernoulliSource`] sharing the
    /// simulation RNG; seeded runs are bit-for-bit identical to the
    /// historical inlined lottery. Use [`Simulator::run_with_source`] to run
    /// on a different arrival realisation (e.g. the proof-backed lottery).
    pub fn run(&self, strategy: &mut dyn AdversaryStrategy) -> SimulationReport {
        // `Simulator::new` already validated `p`, so skip the fallible path.
        self.run_with_source(strategy, &mut BernoulliSource::for_validated(self.config.p))
    }

    /// Runs the simulation with the given adversary strategy, drawing block
    /// arrivals from the given [`ArrivalSource`].
    ///
    /// # Panics
    ///
    /// Panics if the source reports an adversarial position outside
    /// `0..sigma` (a contract violation of the source).
    pub fn run_with_source(
        &self,
        strategy: &mut dyn AdversaryStrategy,
        source: &mut dyn ArrivalSource,
    ) -> SimulationReport {
        let config = self.config;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut state = SimulationState {
            tree: BlockTree::new(),
            public_tip: BlockTree::new().genesis(),
            forks: HashMap::new(),
        };
        state.public_tip = state.tree.genesis();

        for _ in 0..config.steps {
            let roots = self.window_roots(&state);
            let slots = self.mining_slots(&state, &roots);

            match source.next_block(&mut rng, slots.len()) {
                ArrivalEvent::Adversary { position } => {
                    let (root, slot) = slots[position];
                    self.extend_fork(&mut state, root, slot);
                    let view = self.view(&state, &roots, false, true);
                    let action = strategy.decide(&view);
                    self.apply_action(&mut state, &roots, action, None, &mut rng);
                }
                ArrivalEvent::Honest => {
                    // Honest block found; it is pending until the adversary
                    // reacts.
                    let pending = state.tree.add_block(state.public_tip, MinerClass::Honest);
                    let view = self.view(&state, &roots, true, false);
                    let action = strategy.decide(&view);
                    self.apply_action(&mut state, &roots, action, Some(pending), &mut rng);
                }
            }
        }

        let (honest, adversary) =
            self.stable_ownership_counts(&state.tree, state.public_tip, config.depth);
        SimulationReport::new(
            strategy.name().to_string(),
            config.steps,
            honest,
            adversary,
            state.tree.height(state.public_tip),
        )
    }

    /// The main-chain blocks at depths `1..=d` (tip first). Shorter than `d`
    /// near genesis.
    fn window_roots(&self, state: &SimulationState) -> Vec<BlockId> {
        let mut roots = Vec::with_capacity(self.config.depth);
        let mut current = Some(state.public_tip);
        for _ in 0..self.config.depth {
            match current {
                Some(block) => {
                    roots.push(block);
                    current = state.tree.parent(block);
                }
                None => break,
            }
        }
        roots
    }

    /// All positions the adversary currently mines on: every non-empty fork
    /// (extend it) plus, per root with a free slot, one new fork. Under
    /// [`MiningRegime::TipOnly`] only the tip root's positions count.
    fn mining_slots(&self, state: &SimulationState, roots: &[BlockId]) -> Vec<(BlockId, usize)> {
        let considered = match self.config.mining {
            MiningRegime::AllSlots => roots,
            MiningRegime::TipOnly => &roots[..roots.len().min(1)],
        };
        let mut slots = Vec::new();
        for &root in considered {
            let fork_slots = state.forks.get(&root);
            let mut has_empty = false;
            let mut first_empty = 0;
            for slot in 0..self.config.forks_per_block {
                let len = fork_slots
                    .and_then(|slots| slots.get(slot))
                    .map_or(0, |chain| chain.len());
                if len > 0 && len < self.config.max_fork_length {
                    slots.push((root, slot));
                } else if len >= self.config.max_fork_length {
                    // Saturated fork: the adversary still occupies the slot but
                    // additional proofs are wasted; mirror the MDP by keeping
                    // the position (its block simply does not extend the fork).
                    slots.push((root, slot));
                } else if !has_empty {
                    has_empty = true;
                    first_empty = slot;
                }
            }
            if has_empty {
                slots.push((root, first_empty));
            }
        }
        slots
    }

    fn extend_fork(&self, state: &mut SimulationState, root: BlockId, slot: usize) {
        let entry = state
            .forks
            .entry(root)
            .or_insert_with(|| vec![Vec::new(); self.config.forks_per_block]);
        let chain = &mut entry[slot];
        if chain.len() >= self.config.max_fork_length {
            // Saturated: the proof is wasted, mirroring the MDP's min(·, l).
            return;
        }
        let parent = chain.last().copied().unwrap_or(root);
        let block = state.tree.add_block(parent, MinerClass::Adversary);
        chain.push(block);
    }

    fn view(
        &self,
        state: &SimulationState,
        roots: &[BlockId],
        pending_honest_block: bool,
        just_mined: bool,
    ) -> AdversaryView {
        let fork_lengths = (0..self.config.depth)
            .map(|depth| {
                (0..self.config.forks_per_block)
                    .map(|slot| {
                        roots
                            .get(depth)
                            .and_then(|root| state.forks.get(root))
                            .and_then(|slots| slots.get(slot))
                            .map_or(0, |chain| chain.len())
                    })
                    .collect()
            })
            .collect();
        // Ownership of the tracked main-chain blocks at depths 1..d−1; blocks
        // missing near genesis count as honest (the genesis convention).
        let owners = (0..self.config.depth.saturating_sub(1))
            .map(|depth| {
                roots
                    .get(depth)
                    .map_or(MinerClass::Honest, |&root| state.tree.owner(root))
            })
            .collect();
        AdversaryView {
            fork_lengths,
            owners,
            pending_honest_block,
            just_mined,
        }
    }

    fn apply_action(
        &self,
        state: &mut SimulationState,
        roots: &[BlockId],
        action: AdversaryAction,
        pending: Option<BlockId>,
        rng: &mut StdRng,
    ) {
        match action {
            AdversaryAction::Wait => {
                if let Some(pending) = pending {
                    self.adopt_tip(state, pending);
                }
            }
            AdversaryAction::Release {
                depth,
                fork,
                length,
            } => {
                match self.peek_release(state, roots, depth, fork, length) {
                    Some(released_tip) => {
                        let competes_with_pending = pending.is_some();
                        // Published chain height vs the public chain height
                        // (including a pending honest block if any).
                        let published_height = state.tree.height(released_tip);
                        let public_height =
                            state.tree.height(state.public_tip) + u64::from(competes_with_pending);
                        let accepted = published_height > public_height
                            || (published_height == public_height
                                && rng.gen_bool(self.config.gamma));
                        if accepted {
                            // Only now split the fork: the released prefix
                            // becomes public, the remainder re-anchors on the
                            // new tip.
                            self.commit_release(state, roots, depth, fork, length);
                            self.adopt_tip(state, released_tip);
                        } else if let Some(pending) = pending {
                            // Race lost: the honest block goes through and the
                            // adversary keeps its fork (now rooted one block
                            // deeper), exactly as in the MDP model.
                            self.adopt_tip(state, pending);
                        }
                        // A rejected release against no pending block leaves
                        // the public tip unchanged.
                    }
                    None => {
                        // Invalid release: treat as Wait.
                        if let Some(pending) = pending {
                            self.adopt_tip(state, pending);
                        }
                    }
                }
            }
        }
    }

    /// Validates a `(depth, fork, length)` release request and returns the
    /// block that would become the public tip if the release were adopted,
    /// without modifying any state.
    fn peek_release(
        &self,
        state: &SimulationState,
        roots: &[BlockId],
        depth: usize,
        fork: usize,
        length: usize,
    ) -> Option<BlockId> {
        if depth == 0 || depth > roots.len() || fork == 0 || fork > self.config.forks_per_block {
            return None;
        }
        let root = roots[depth - 1];
        let chain = state.forks.get(&root)?.get(fork - 1)?;
        if length == 0 || length > chain.len() {
            return None;
        }
        Some(chain[length - 1])
    }

    /// Splits an accepted release off its fork: the released prefix leaves the
    /// private-fork bookkeeping and the remainder re-anchors on the released
    /// tip as a fresh private fork.
    fn commit_release(
        &self,
        state: &mut SimulationState,
        roots: &[BlockId],
        depth: usize,
        fork: usize,
        length: usize,
    ) {
        let root = roots[depth - 1];
        let Some(slots) = state.forks.get_mut(&root) else {
            return;
        };
        let chain = &mut slots[fork - 1];
        let remainder: Vec<BlockId> = chain.split_off(length);
        let prefix = std::mem::take(chain);
        if !remainder.is_empty() {
            let released_tip = *prefix.last().expect("prefix non-empty");
            let entry = state
                .forks
                .entry(released_tip)
                .or_insert_with(|| vec![Vec::new(); self.config.forks_per_block]);
            entry[0] = remainder;
        }
    }

    /// Makes `tip` the new public tip and prunes private forks whose roots are
    /// no longer within the last `d` blocks of the main chain.
    fn adopt_tip(&self, state: &mut SimulationState, tip: BlockId) {
        state.public_tip = tip;
        let window: std::collections::HashSet<BlockId> = {
            let mut set = std::collections::HashSet::new();
            let mut current = Some(tip);
            for _ in 0..self.config.depth {
                match current {
                    Some(block) => {
                        set.insert(block);
                        current = state.tree.parent(block);
                    }
                    None => break,
                }
            }
            set
        };
        state.forks.retain(|root, _| window.contains(root));
    }

    /// Ownership counts over the *stable* part of the main chain (everything
    /// deeper than the attack window of `d` blocks).
    fn stable_ownership_counts(&self, tree: &BlockTree, tip: BlockId, depth: usize) -> (u64, u64) {
        let chain = tree.chain_to(tip);
        let stable_len = chain.len().saturating_sub(depth);
        let mut honest = 0;
        let mut adversary = 0;
        for &block in chain.iter().take(stable_len) {
            if block == tree.genesis() {
                continue;
            }
            match tree.owner(block) {
                MinerClass::Honest => honest += 1,
                MinerClass::Adversary => adversary += 1,
            }
        }
        (honest, adversary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HonestStrategy, Sm1Strategy};

    fn config(p: f64, gamma: f64, steps: usize, seed: u64) -> SimulationConfig {
        SimulationConfig {
            p,
            gamma,
            depth: 2,
            forks_per_block: 1,
            max_fork_length: 4,
            steps,
            seed,
            mining: MiningRegime::AllSlots,
        }
    }

    #[test]
    fn honest_strategy_earns_proportional_share() {
        let report = Simulator::new(config(0.3, 0.5, 60_000, 1)).run(&mut HonestStrategy);
        let revenue = report.relative_revenue();
        assert!(
            (revenue - 0.3).abs() < 0.03,
            "honest revenue {revenue} should be near 0.3"
        );
    }

    #[test]
    fn zero_resource_adversary_never_wins_blocks() {
        let report = Simulator::new(config(0.0, 1.0, 5_000, 2)).run(&mut Sm1Strategy);
        assert_eq!(report.adversary_blocks, 0);
        assert!(report.honest_blocks > 0);
    }

    #[test]
    fn full_resource_adversary_owns_the_chain() {
        let report = Simulator::new(config(1.0, 0.0, 5_000, 3)).run(&mut HonestStrategy);
        assert_eq!(report.honest_blocks, 0);
        assert!(report.adversary_blocks > 0);
    }

    #[test]
    fn sm1_with_high_gamma_beats_honest_share() {
        // With γ = 1 and p = 0.4 the classic attack is clearly profitable.
        let report = Simulator::new(SimulationConfig {
            p: 0.4,
            gamma: 1.0,
            steps: 120_000,
            seed: 11,
            ..SimulationConfig::default()
        })
        .run(&mut Sm1Strategy);
        assert!(
            report.relative_revenue() > 0.42,
            "sm1 revenue {} should exceed the honest share",
            report.relative_revenue()
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = Simulator::new(config(0.3, 0.5, 10_000, 9)).run(&mut Sm1Strategy);
        let b = Simulator::new(config(0.3, 0.5, 10_000, 9)).run(&mut Sm1Strategy);
        assert_eq!(a.honest_blocks, b.honest_blocks);
        assert_eq!(a.adversary_blocks, b.adversary_blocks);
        let c = Simulator::new(config(0.3, 0.5, 10_000, 10)).run(&mut Sm1Strategy);
        assert!(c.honest_blocks != a.honest_blocks || c.adversary_blocks != a.adversary_blocks);
    }

    #[test]
    fn run_is_the_bernoulli_source_run() {
        // `run` must stay bit-for-bit identical to an explicit Bernoulli
        // arrival source: both share the simulation RNG with the same draw
        // sequence.
        let simulator = Simulator::new(config(0.35, 0.5, 20_000, 13));
        let direct = simulator.run(&mut Sm1Strategy);
        let via_source = simulator.run_with_source(
            &mut Sm1Strategy,
            &mut crate::BernoulliSource::new(0.35).unwrap(),
        );
        assert_eq!(direct, via_source);
    }

    #[test]
    fn pow_lottery_source_yields_consistent_honest_share() {
        let simulator = Simulator::new(config(0.3, 0.5, 60_000, 4));
        let mut source = crate::PowLotterySource::new(0.3, 17).unwrap();
        let report = simulator.run_with_source(&mut HonestStrategy, &mut source);
        let revenue = report.relative_revenue();
        assert!(
            (revenue - 0.3).abs() < 0.03,
            "pow-lottery honest revenue {revenue} should be near 0.3"
        );
    }

    #[test]
    fn tip_only_regime_earns_the_proportional_share_for_honest_release() {
        // Under TipOnly mining an immediately-publishing adversary is exactly
        // an honest miner with resource p: no deep positions, no boost from
        // concurrent mining, revenue → p.
        let report = Simulator::new(SimulationConfig {
            mining: MiningRegime::TipOnly,
            ..config(0.3, 0.5, 60_000, 21)
        })
        .run(&mut HonestStrategy);
        let revenue = report.relative_revenue();
        assert!(
            (revenue - 0.3).abs() < 0.02,
            "tip-only honest revenue {revenue} should be near 0.3"
        );
    }

    #[test]
    fn tip_only_regime_restricts_where_private_blocks_land() {
        // A withholding strategy under TipOnly can only ever grow tip forks:
        // the Sm1 single-fork attack still runs, and the run differs from the
        // AllSlots realisation of the same seed.
        let tip = Simulator::new(SimulationConfig {
            mining: MiningRegime::TipOnly,
            ..config(0.4, 0.5, 20_000, 5)
        })
        .run(&mut Sm1Strategy);
        let all = Simulator::new(config(0.4, 0.5, 20_000, 5)).run(&mut Sm1Strategy);
        assert!(tip.adversary_blocks > 0);
        assert_ne!(
            (tip.honest_blocks, tip.adversary_blocks),
            (all.honest_blocks, all.adversary_blocks)
        );
    }

    #[test]
    #[should_panic(expected = "p must lie in [0, 1]")]
    fn invalid_probability_is_rejected() {
        let _ = Simulator::new(SimulationConfig {
            p: 1.5,
            ..SimulationConfig::default()
        });
    }
}
