//! Pluggable block-arrival sources for the simulator.
//!
//! The paper reduces block production in every efficient proof system to the
//! `(p, k)`-mining lottery: when the adversary mines on `σ` positions, the
//! next block is adversarial with probability `pσ / (1 − p + pσ)`. The
//! simulator does not care *how* that lottery is realised, only who produced
//! the block and on which of the adversary's mining positions — which is
//! exactly what [`ArrivalSource`] abstracts.
//!
//! Two realisations live here (the further proof-backed ones — stake, space,
//! space-time and VDF lotteries — live in [`crate::backend`], which also
//! provides the [`crate::ConsensusBackend`] descriptor enumerating all of
//! them):
//!
//! * [`BernoulliSource`] — the ideal lottery, drawn directly from the
//!   simulation's RNG. [`crate::Simulator::run`] uses this source and its
//!   draw sequence is bit-for-bit identical to the historical inlined
//!   lottery, so seeded runs reproduce the pre-refactor results exactly.
//! * [`PowLotterySource`] — a proof-backed lottery built from the dormant
//!   `sm-proofs` crate: every step is one hashcash attempt
//!   ([`sm_proofs::pow::ProofOfWork`]) against a resource-proportional
//!   target, with the challenge evolving through the Bitcoin-like
//!   [`sm_proofs::UnpredictableSchedule`]. Its randomness comes from the
//!   hash chain, not from the simulation RNG, so it is a statistically
//!   independent realisation of the same arrival law — agreement between the
//!   two sources is part of the statistical-conformance check in
//!   `sm-conformance`.

use crate::error::{validate_share, ChainError};
use rand::rngs::StdRng;
use rand::Rng;
use sm_proofs::pow::ProofOfWork;
use sm_proofs::{hash_concat, ChallengeSchedule, Digest, UnpredictableSchedule};

/// Producer of the next block, as reported by an [`ArrivalSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalEvent {
    /// Honest miners found the next block (always on the public tip).
    Honest,
    /// The adversary found the next block on its `position`-th mining slot
    /// (an index in `0..sigma`, in the simulator's slot enumeration order).
    Adversary {
        /// Which of the adversary's current mining positions the proof
        /// extends.
        position: usize,
    },
}

/// A realisation of the `(p, k)`-mining block-arrival lottery.
///
/// At every simulated time step the simulator reports how many positions the
/// adversary currently mines on (`sigma`) and the source decides who produces
/// the next block. Implementations must return a `position < sigma` for
/// adversarial events (the simulator indexes its slot list with it) and must
/// be deterministic given their seed and the shared RNG stream.
pub trait ArrivalSource {
    /// Draws the producer of the next block given the adversary's current
    /// number of mining positions `sigma`.
    ///
    /// The simulation's own RNG is passed in so that sources may share its
    /// stream (the Bernoulli source does, preserving historical seeded runs);
    /// sources with their own randomness (the proof-backed lottery) are free
    /// to ignore it.
    fn next_block(&mut self, rng: &mut StdRng, sigma: usize) -> ArrivalEvent;

    /// Human-readable name used in reports and diagnostics.
    fn name(&self) -> &'static str {
        "arrival"
    }
}

/// The ideal Bernoulli lottery of the paper's system model, drawn from the
/// simulation RNG.
///
/// The adversary wins with probability `pσ / (1 − p + pσ)`; a winning draw is
/// attributed uniformly to one of its `σ` positions. The draw sequence —
/// one float for the lottery, one integer for the position on a win — is
/// exactly the sequence the simulator performed before arrival sources
/// existed, so seeded [`crate::Simulator::run`] results are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliSource {
    p: f64,
}

impl BernoulliSource {
    /// Creates the lottery for an adversary owning a `p` fraction of the
    /// resource.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(p: f64) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        Ok(BernoulliSource { p })
    }

    /// Infallible constructor for callers that have already validated `p`
    /// (e.g. [`crate::Simulator::new`] rejects invalid shares up front).
    pub(crate) fn for_validated(p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        BernoulliSource { p }
    }
}

impl ArrivalSource for BernoulliSource {
    fn next_block(&mut self, rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        let sigma_f = sigma as f64;
        let denominator = (1.0 - self.p) + self.p * sigma_f;
        let adversary_wins =
            denominator > 0.0 && rng.gen_range(0.0..denominator) < self.p * sigma_f;
        if adversary_wins {
            ArrivalEvent::Adversary {
                position: rng.gen_range(0..sigma),
            }
        } else {
            ArrivalEvent::Honest
        }
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

/// Miner id under which the adversarial coalition grinds its PoW attempts.
const ADVERSARY_MINER: u64 = 0xAD;

/// Attributes a winning proof to one of the adversary's `sigma` mining
/// positions, uniformly, by hashing the proof digest. Shared by every
/// proof-backed arrival source (here and in [`crate::backend`]).
pub(crate) fn slot_for(digest: &Digest, sigma: usize) -> usize {
    if sigma > 1 {
        (hash_concat(&[b"arrival-slot", &digest.0]).leading_u64() % sigma as u64) as usize
    } else {
        0
    }
}

/// A proof-backed arrival lottery: one hashcash attempt per time step.
///
/// Each step the adversary submits one [`ProofOfWork`] attempt whose target
/// is scaled to its momentary lottery weight `pσ / (1 − p + pσ)`; a valid
/// proof yields an adversarial block (the proof digest also selects the
/// mining position), otherwise the step's block is honest. The challenge for
/// the next attempt is derived from the produced block through the
/// unpredictable (Bitcoin-like) schedule, so the adversary cannot grind
/// ahead — the modelling assumption at the heart of the paper.
///
/// The source is fully deterministic given its seed and never touches the
/// simulation RNG, making it an independent realisation of the arrival law
/// for cross-checking the Bernoulli source.
#[derive(Debug, Clone, PartialEq)]
pub struct PowLotterySource {
    p: f64,
    schedule: UnpredictableSchedule,
    challenge: Digest,
    height: u64,
    nonce: u64,
}

impl PowLotterySource {
    /// Creates the proof-backed lottery for resource share `p`, with the
    /// genesis challenge derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(p: f64, seed: u64) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        Ok(PowLotterySource {
            p,
            schedule: UnpredictableSchedule,
            challenge: hash_concat(&[b"arrival-genesis", &seed.to_be_bytes()]),
            height: 0,
            nonce: 0,
        })
    }

    /// Advances the challenge chain past the block described by `digest`.
    fn advance(&mut self, digest: Digest) {
        self.height += 1;
        self.challenge = self.schedule.challenge(&digest, self.height);
    }
}

impl ArrivalSource for PowLotterySource {
    fn next_block(&mut self, _rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        let sigma_f = sigma as f64;
        let total = (1.0 - self.p) + self.p * sigma_f;
        let ratio = if total > 0.0 {
            (self.p * sigma_f / total).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.nonce += 1;
        // Degenerate resource splits bypass the hash so the probabilities are
        // exactly 0 and 1 (a u64 target can only approximate them).
        let winning_digest = if ratio <= 0.0 {
            None
        } else if ratio >= 1.0 {
            Some(hash_concat(&[
                b"pow-certain",
                &self.challenge.0,
                &self.nonce.to_be_bytes(),
            ]))
        } else {
            let puzzle = ProofOfWork {
                target: (ratio * u64::MAX as f64) as u64,
            };
            puzzle
                .attempt(&self.challenge, ADVERSARY_MINER, self.nonce)
                .map(|solution| solution.digest)
        };
        match winning_digest {
            Some(digest) => {
                let position = slot_for(&digest, sigma);
                self.advance(digest);
                ArrivalEvent::Adversary { position }
            }
            None => {
                // The honest block has no ground proof in this abstraction;
                // a synthetic digest keeps the challenge chain unpredictable.
                let digest = hash_concat(&[
                    b"honest-block",
                    &self.challenge.0,
                    &self.nonce.to_be_bytes(),
                ]);
                self.advance(digest);
                ArrivalEvent::Honest
            }
        }
    }

    fn name(&self) -> &'static str {
        "pow-lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn frequency(source: &mut dyn ArrivalSource, sigma: usize, draws: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        let mut adversary = 0usize;
        for _ in 0..draws {
            if let ArrivalEvent::Adversary { position } = source.next_block(&mut rng, sigma) {
                assert!(position < sigma, "position {position} out of range");
                adversary += 1;
            }
        }
        adversary as f64 / draws as f64
    }

    #[test]
    fn bernoulli_frequency_matches_lottery_law() {
        let p = 0.3;
        let sigma = 3;
        let expected = p * sigma as f64 / (1.0 - p + p * sigma as f64);
        let freq = frequency(&mut BernoulliSource::new(p).unwrap(), sigma, 40_000);
        assert!((freq - expected).abs() < 0.01, "freq {freq} vs {expected}");
    }

    #[test]
    fn pow_lottery_frequency_matches_lottery_law() {
        let p = 0.3;
        let sigma = 3;
        let expected = p * sigma as f64 / (1.0 - p + p * sigma as f64);
        let freq = frequency(&mut PowLotterySource::new(p, 11).unwrap(), sigma, 40_000);
        assert!((freq - expected).abs() < 0.01, "freq {freq} vs {expected}");
    }

    #[test]
    fn sources_handle_degenerate_resource_splits() {
        for source in [
            &mut PowLotterySource::new(0.0, 1).unwrap() as &mut dyn ArrivalSource,
            &mut BernoulliSource::new(0.0).unwrap(),
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..200 {
                assert_eq!(source.next_block(&mut rng, 4), ArrivalEvent::Honest);
            }
        }
        for source in [
            &mut PowLotterySource::new(1.0, 1).unwrap() as &mut dyn ArrivalSource,
            &mut BernoulliSource::new(1.0).unwrap(),
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..200 {
                assert!(matches!(
                    source.next_block(&mut rng, 2),
                    ArrivalEvent::Adversary { .. }
                ));
            }
        }
    }

    #[test]
    fn pow_lottery_is_deterministic_per_seed_and_ignores_the_rng() {
        let draw_all = |seed: u64, rng_seed: u64| {
            let mut source = PowLotterySource::new(0.35, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(rng_seed);
            (0..500)
                .map(|_| source.next_block(&mut rng, 2))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_all(5, 1), draw_all(5, 99));
        assert_ne!(draw_all(5, 1), draw_all(6, 1));
    }

    #[test]
    fn pow_slot_attribution_covers_all_positions() {
        let mut source = PowLotterySource::new(0.5, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 3];
        for _ in 0..2_000 {
            if let ArrivalEvent::Adversary { position } = source.next_block(&mut rng, 3) {
                seen[position] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "positions hit: {seen:?}");
    }

    #[test]
    fn invalid_shares_are_typed_errors_not_panics() {
        // Fails on the old code, which `assert!`ed instead of returning the
        // shared typed error.
        let expected = ChainError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1]",
        };
        for bad in [1.2, -0.1, f64::NAN, f64::INFINITY] {
            assert_eq!(
                BernoulliSource::new(bad).err(),
                Some(expected),
                "bernoulli p = {bad}"
            );
            assert_eq!(
                PowLotterySource::new(bad, 1).err(),
                Some(expected),
                "pow-lottery p = {bad}"
            );
        }
    }
}
