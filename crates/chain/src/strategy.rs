//! Adversary strategies for the chain simulator.

use crate::MinerClass;
use std::collections::HashMap;

/// The adversary's view of the simulation at a decision point, expressed in
/// the same vocabulary as the selfish-mining MDP state: private fork lengths
/// per (depth, slot), ownership of the tracked main-chain blocks, and whether
/// a freshly found honest block is pending.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdversaryView {
    /// `fork_lengths[i][j]` is the length of the `j`-th private fork rooted at
    /// the main-chain block at depth `i + 1`.
    pub fork_lengths: Vec<Vec<usize>>,
    /// `owners[i]` is the producer of the main-chain block at depth `i + 1`
    /// (the MDP's ownership vector `O`, covering depths `1..d−1`).
    pub owners: Vec<MinerClass>,
    /// Whether an honest block was just found and awaits incorporation.
    pub pending_honest_block: bool,
    /// Whether the adversary just extended one of its forks.
    pub just_mined: bool,
}

impl AdversaryView {
    /// Total number of withheld blocks.
    pub fn total_private_blocks(&self) -> usize {
        self.fork_lengths.iter().flatten().sum()
    }
}

/// A decision of the adversary at a decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdversaryAction {
    /// Keep all forks private and continue mining.
    Wait,
    /// Publish the first `length` blocks of fork `(depth, fork)` (1-based, as
    /// in the MDP action `release_{i,j,k}`).
    Release {
        /// Root depth of the fork to publish.
        depth: usize,
        /// Slot index of the fork at that depth.
        fork: usize,
        /// Number of blocks to publish.
        length: usize,
    },
}

/// A selfish-mining strategy driving the adversary in the simulator.
pub trait AdversaryStrategy {
    /// Chooses an action for the given view.
    fn decide(&mut self, view: &AdversaryView) -> AdversaryAction;

    /// Human-readable name used in reports.
    fn name(&self) -> &str {
        "adversary"
    }

    /// Number of decision points this strategy had no explicit policy for
    /// (0 for strategies that are total by construction). Table-backed
    /// strategies report their fallback hits here so that conformance runs
    /// can surface coverage gaps between the MDP and the simulator.
    fn unknown_views(&self) -> u64 {
        0
    }
}

/// The honest baseline: publish every block immediately, never withhold.
///
/// In the simulator this is realised by releasing a depth-1 fork of length 1
/// as soon as it exists and never mining on deeper blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HonestStrategy;

impl AdversaryStrategy for HonestStrategy {
    fn decide(&mut self, view: &AdversaryView) -> AdversaryAction {
        if view.just_mined {
            if let Some(row) = view.fork_lengths.first() {
                if let Some((fork, &len)) = row.iter().enumerate().find(|&(_, &len)| len > 0) {
                    // Publish the freshly mined tip block right away.
                    return AdversaryAction::Release {
                        depth: 1,
                        fork: fork + 1,
                        length: len,
                    };
                }
            }
        }
        AdversaryAction::Wait
    }

    fn name(&self) -> &str {
        "honest"
    }
}

/// The classic Eyal–Sirer selfish-mining strategy restricted to a single
/// private chain on the tip: withhold; when an honest block arrives, match it
/// (tie race) if the lead is exactly one, publish everything if the lead is
/// exactly two, otherwise keep withholding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sm1Strategy;

impl AdversaryStrategy for Sm1Strategy {
    fn decide(&mut self, view: &AdversaryView) -> AdversaryAction {
        if !view.pending_honest_block {
            return AdversaryAction::Wait;
        }
        let lead = view
            .fork_lengths
            .first()
            .and_then(|row| row.first())
            .copied()
            .unwrap_or(0);
        match lead {
            0 => AdversaryAction::Wait,
            // Tie race against the pending honest block.
            1 => AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 1,
            },
            // Lead of two: publish everything and win outright.
            2 => AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 2,
            },
            // Large lead: publish just enough to stay ahead by one... the
            // classic strategy publishes one block; within the simulator's
            // fork abstraction publishing a strict prefix keeps the remainder
            // private, which matches the original attack.
            _ => AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 2,
            },
        }
    }

    fn name(&self) -> &str {
        "single-fork selfish mining"
    }
}

/// What a [`TableStrategy`] does when asked to decide a view it has no entry
/// for.
///
/// A table compiled from an MDP strategy covers every view the MDP reaches;
/// a miss therefore either means the simulator wandered into territory the
/// model prunes (benign, but worth counting) or that the two implementations
/// disagree on the state space (a bug). The policy makes that choice
/// explicit instead of silently waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownViewPolicy {
    /// Play [`AdversaryAction::Wait`] and count the miss (see
    /// [`TableStrategy::unknown_views`]). The default, and what conformance
    /// runs use: the run completes and the report surfaces the coverage gap.
    #[default]
    Wait,
    /// Panic with the offending view. For strict certification debugging
    /// where any coverage gap must abort immediately.
    Panic,
}

/// A strategy defined by an explicit lookup table from views to actions, with
/// an explicit [`UnknownViewPolicy`] for views without an entry.
///
/// `selfish_mining::StrategyExport` compiles the ε-optimal positional
/// strategy computed by the MDP analysis into such a table; the conformance
/// subsystem replays it in the simulator to cross-validate the two
/// implementations.
#[derive(Debug, Clone, Default)]
pub struct TableStrategy {
    table: HashMap<AdversaryView, AdversaryAction>,
    name: String,
    policy: UnknownViewPolicy,
    unknown_views: u64,
}

impl TableStrategy {
    /// Creates a table strategy with the given name and the default
    /// [`UnknownViewPolicy::Wait`] fallback.
    pub fn new(name: impl Into<String>) -> Self {
        TableStrategy::with_policy(name, UnknownViewPolicy::default())
    }

    /// Creates a table strategy with the given name and unknown-view policy.
    pub fn with_policy(name: impl Into<String>, policy: UnknownViewPolicy) -> Self {
        TableStrategy {
            table: HashMap::new(),
            name: name.into(),
            policy,
            unknown_views: 0,
        }
    }

    /// Registers the action to play in a view.
    pub fn insert(&mut self, view: AdversaryView, action: AdversaryAction) {
        self.table.insert(view, action);
    }

    /// Number of views with an explicit entry.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The policy applied to views without an entry.
    pub fn policy(&self) -> UnknownViewPolicy {
        self.policy
    }

    /// Number of decisions that fell through to the unknown-view policy since
    /// construction (or the last [`TableStrategy::reset_unknown_views`]).
    pub fn unknown_views(&self) -> u64 {
        self.unknown_views
    }

    /// Resets the unknown-view counter, e.g. between simulation runs sharing
    /// one table.
    pub fn reset_unknown_views(&mut self) {
        self.unknown_views = 0;
    }
}

impl AdversaryStrategy for TableStrategy {
    fn decide(&mut self, view: &AdversaryView) -> AdversaryAction {
        match self.table.get(view) {
            Some(&action) => action,
            None => match self.policy {
                UnknownViewPolicy::Wait => {
                    self.unknown_views += 1;
                    AdversaryAction::Wait
                }
                UnknownViewPolicy::Panic => {
                    panic!(
                        "table strategy '{}' has no entry for view {view:?}",
                        self.name
                    )
                }
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn unknown_views(&self) -> u64 {
        self.unknown_views
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(lengths: Vec<Vec<usize>>, pending: bool, mined: bool) -> AdversaryView {
        AdversaryView {
            fork_lengths: lengths,
            owners: vec![MinerClass::Honest],
            pending_honest_block: pending,
            just_mined: mined,
        }
    }

    #[test]
    fn honest_strategy_publishes_immediately() {
        let mut honest = HonestStrategy;
        let action = honest.decide(&view(vec![vec![1]], false, true));
        assert_eq!(
            action,
            AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 1
            }
        );
        assert_eq!(
            honest.decide(&view(vec![vec![0]], false, true)),
            AdversaryAction::Wait
        );
        assert_eq!(
            honest.decide(&view(vec![vec![1]], true, false)),
            AdversaryAction::Wait
        );
        assert_eq!(honest.name(), "honest");
    }

    #[test]
    fn sm1_races_on_tie_and_publishes_on_lead_two() {
        let mut sm1 = Sm1Strategy;
        assert_eq!(
            sm1.decide(&view(vec![vec![0]], true, false)),
            AdversaryAction::Wait
        );
        assert_eq!(
            sm1.decide(&view(vec![vec![1]], true, false)),
            AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 1
            }
        );
        assert_eq!(
            sm1.decide(&view(vec![vec![2]], true, false)),
            AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 2
            }
        );
        assert_eq!(
            sm1.decide(&view(vec![vec![3]], false, false)),
            AdversaryAction::Wait
        );
    }

    #[test]
    fn table_strategy_falls_back_to_wait() {
        let mut table = TableStrategy::new("from-mdp");
        assert!(table.is_empty());
        let v = view(vec![vec![2]], true, false);
        table.insert(
            v.clone(),
            AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 2,
            },
        );
        assert_eq!(table.len(), 1);
        assert_eq!(
            table.decide(&v),
            AdversaryAction::Release {
                depth: 1,
                fork: 1,
                length: 2
            }
        );
        assert_eq!(
            table.decide(&view(vec![vec![4]], true, false)),
            AdversaryAction::Wait
        );
        assert_eq!(table.name(), "from-mdp");
        assert_eq!(table.unknown_views(), 1);
        assert_eq!(AdversaryStrategy::unknown_views(&table), 1);
        table.reset_unknown_views();
        assert_eq!(table.unknown_views(), 0);
    }

    #[test]
    fn known_views_do_not_count_as_unknown() {
        let mut table = TableStrategy::with_policy("strict", UnknownViewPolicy::Wait);
        let v = view(vec![vec![1]], true, false);
        table.insert(v.clone(), AdversaryAction::Wait);
        assert_eq!(table.policy(), UnknownViewPolicy::Wait);
        let _ = table.decide(&v);
        assert_eq!(table.unknown_views(), 0);
    }

    #[test]
    #[should_panic(expected = "has no entry for view")]
    fn panic_policy_aborts_on_unknown_views() {
        let mut table = TableStrategy::with_policy("strict", UnknownViewPolicy::Panic);
        let _ = table.decide(&view(vec![vec![1]], true, false));
    }

    #[test]
    fn builtin_strategies_are_total() {
        assert_eq!(AdversaryStrategy::unknown_views(&HonestStrategy), 0);
        assert_eq!(AdversaryStrategy::unknown_views(&Sm1Strategy), 0);
    }

    #[test]
    fn view_counts_private_blocks() {
        let v = view(vec![vec![2, 1], vec![0, 3]], false, false);
        assert_eq!(v.total_private_blocks(), 6);
    }
}
