//! Typed errors for the chain crate's fallible constructors.
//!
//! The chain layer sits below `sm-core` in the dependency graph, so it hosts
//! its own error type; `selfish_mining::SelfishMiningError` converts from it
//! (via `From`) and `selfish_mining::validate_share` delegates to
//! [`validate_share`] here, keeping one canonical share check for the whole
//! workspace.

use std::error::Error;
use std::fmt;

/// Errors reported by fallible `sm-chain` constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// A numeric parameter violates its documented constraint.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated constraint, stated positively.
        constraint: &'static str,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} violates constraint: {constraint}")
            }
        }
    }
}

impl Error for ChainError {}

/// Validates that `value` is a resource share: finite and in `[0, 1]`.
///
/// This is the canonical share check of the workspace;
/// `selfish_mining::validate_share` delegates here (mapping the error into
/// `SelfishMiningError`), so both layers reject exactly the same inputs with
/// the same wording.
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] when `value` is NaN, infinite or
/// outside `[0, 1]`.
pub fn validate_share(name: &'static str, value: f64) -> Result<(), ChainError> {
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(ChainError::InvalidParameter {
            name,
            constraint: "must lie in [0, 1]",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_inside_the_unit_interval_pass() {
        assert!(validate_share("p", 0.0).is_ok());
        assert!(validate_share("p", 0.5).is_ok());
        assert!(validate_share("p", 1.0).is_ok());
    }

    #[test]
    fn out_of_range_and_non_finite_shares_are_typed_errors() {
        for bad in [-0.001, 1.001, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                validate_share("p", bad),
                Err(ChainError::InvalidParameter {
                    name: "p",
                    constraint: "must lie in [0, 1]",
                }),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn display_matches_the_core_error_wording() {
        let err = ChainError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1]",
        };
        assert_eq!(
            err.to_string(),
            "parameter p violates constraint: must lie in [0, 1]"
        );
    }
}
