//! Pluggable consensus backends: every realisation of the `(p, k)`-mining
//! arrival lottery, behind one descriptor.
//!
//! The paper reduces block production in any efficient proof system to the
//! same arrival law — when the adversary mines on `σ` positions the next
//! block is adversarial with probability `pσ / (1 − p + pσ)` — so the solver
//! certificates are statements about that law, not about any particular
//! proof system. The conformance story gains its force from witnessing the
//! certificates against *independent* realisations of the law:
//! [`ConsensusBackend`] enumerates them, and each variant builds a concrete
//! [`ArrivalSource`] from the dormant `sm-proofs` simulators (hashcash PoW,
//! stake lotteries, space proofs, space-time proofs, VDF beacons) next to
//! the ideal Bernoulli draw.
//!
//! A backend is a first-class grid axis, exactly like an attack scenario:
//!
//! * [`ConsensusBackend::label`] / [`ConsensusBackend::from_label`] give the
//!   round-tripping label grammar used by reports, the sweep configuration
//!   and the service's JSONL wire format;
//! * [`ConsensusBackend::seed_salt`] is folded into per-replica seed streams
//!   by the conformance estimator so backend streams are disjoint the way
//!   scenario streams already are (the Bernoulli ideal salts to `0` and is
//!   *not* folded, preserving historical replica streams);
//! * [`ConsensusBackend::source`] builds the arrival source from `(p, seed)`;
//! * [`ConsensusBackend::closed_form_win_probability`] is the per-backend
//!   closed form of the one-step arrival law, the cross-check anchor against
//!   the Bernoulli ideal (the space-time backend genuinely differs: its VDF
//!   budget caps the number of positions the miner can work on);
//! * [`ConsensusBackend::challenge_visibility`] declares whether the
//!   backend's challenge schedule is predictable — a capability consumed at
//!   the model/scenario layer (`selfish_mining::CertificateScope`), because a
//!   predictable schedule admits adversaries outside the memoryless strategy
//!   space the solver optimises over.

use crate::arrival::{slot_for, ArrivalEvent, ArrivalSource, BernoulliSource, PowLotterySource};
use crate::error::{validate_share, ChainError};
use rand::rngs::StdRng;
use sm_proofs::pospace::{ProofOfSpace, SpaceProof};
use sm_proofs::post::ProofOfSpaceTime;
use sm_proofs::postake::{ProofOfStake, StakerId};
use sm_proofs::vdf::Vdf;
use sm_proofs::{
    hash_concat, ChallengeSchedule, Digest, PredictableSchedule, UnpredictableSchedule,
};
use std::fmt;

/// Whether a backend's challenge schedule lets miners compute future
/// challenges before the blocks they attach to exist.
///
/// The paper's model assumes unpredictable (Bitcoin-like) challenges; under
/// a predictable (Ouroboros-like) schedule the adversary can plan around
/// future lottery outcomes, a strategy space the memoryless solver does not
/// search. Backends declare which regime they realise so the layers above
/// can scope their certificates accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChallengeVisibility {
    /// Challenges derive from the parent block: unknown until it exists.
    Unpredictable,
    /// Challenges are computable ahead of time (epoch randomness, VDF
    /// beacons): the adversary can plan ahead.
    Predictable,
}

/// Descriptor of one realisation of the `(p, k)`-mining arrival lottery.
///
/// The backend is threaded as a grid axis through the conformance
/// estimator, the sweep engine's conformance matrices and the query
/// service's wire format; see the module documentation for the contract of
/// each method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConsensusBackend {
    /// The ideal lottery drawn from the simulation RNG
    /// ([`BernoulliSource`]).
    #[default]
    Bernoulli,
    /// One hashcash attempt per step against a resource-proportional target
    /// ([`PowLotterySource`]).
    PowLottery,
    /// A stake-table eligibility lottery under a predictable epoch schedule
    /// ([`StakeLotterySource`]).
    PoStake,
    /// A proof-of-space quality race between the adversary's and the honest
    /// plot ([`SpaceLotterySource`]).
    PoSpace,
    /// Chia-style proofs of space *and* time: the miner's VDF budget caps
    /// how many of its `σ` positions it can actually extend
    /// ([`PostLotterySource`]).
    Post {
        /// Number of VDF processors the adversarial coalition owns (the
        /// paper's `k`); at most this many positions count per step.
        vdfs: usize,
    },
    /// A sequential VDF beacon sequencing arrivals ([`VdfLotterySource`]).
    Vdf,
}

impl ConsensusBackend {
    /// The canonical label used in reports, sweep configuration and the
    /// JSONL wire format. Round-trips through [`ConsensusBackend::from_label`].
    pub fn label(&self) -> String {
        match *self {
            ConsensusBackend::Bernoulli => "bernoulli".to_string(),
            ConsensusBackend::PowLottery => "pow-lottery".to_string(),
            ConsensusBackend::PoStake => "postake".to_string(),
            ConsensusBackend::PoSpace => "pospace".to_string(),
            ConsensusBackend::Post { vdfs } => format!("post({vdfs})"),
            ConsensusBackend::Vdf => "vdf".to_string(),
        }
    }

    /// Parses a label produced by [`ConsensusBackend::label`]; returns
    /// `None` for anything else (including `post(0)`, which would leave the
    /// space-time miner without a single VDF processor).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "bernoulli" => Some(ConsensusBackend::Bernoulli),
            "pow-lottery" => Some(ConsensusBackend::PowLottery),
            "postake" => Some(ConsensusBackend::PoStake),
            "pospace" => Some(ConsensusBackend::PoSpace),
            "vdf" => Some(ConsensusBackend::Vdf),
            other => {
                let digits = other.strip_prefix("post(")?.strip_suffix(')')?;
                if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                let vdfs: usize = digits.parse().ok()?;
                (vdfs >= 1).then_some(ConsensusBackend::Post { vdfs })
            }
        }
    }

    /// The default backend family: every shipped realisation, with a
    /// two-VDF budget for the space-time miner.
    pub fn default_family() -> Vec<ConsensusBackend> {
        vec![
            ConsensusBackend::Bernoulli,
            ConsensusBackend::PowLottery,
            ConsensusBackend::PoStake,
            ConsensusBackend::PoSpace,
            ConsensusBackend::Post { vdfs: 2 },
            ConsensusBackend::Vdf,
        ]
    }

    /// Seed-stream salt folded into per-replica seeds by the conformance
    /// estimator, so different backends consume disjoint randomness at the
    /// same grid point — mirroring how scenario streams are separated.
    ///
    /// The Bernoulli ideal salts to `0` and is *not* folded, preserving the
    /// historical replica streams (the same convention
    /// `AttackScenario::Optimal` follows). The high bytes namespace backend
    /// salts away from the small-integer scenario salts, so a
    /// `(scenario, backend)` pair can never collide with a
    /// `(scenario', backend')` pair through fold-order coincidences.
    pub fn seed_salt(&self) -> u64 {
        match *self {
            ConsensusBackend::Bernoulli => 0,
            ConsensusBackend::PowLottery => 0xBAC2_0000_0000_0001,
            ConsensusBackend::PoStake => 0xBAC2_0000_0000_0002,
            ConsensusBackend::PoSpace => 0xBAC2_0000_0000_0003,
            ConsensusBackend::Vdf => 0xBAC2_0000_0000_0004,
            ConsensusBackend::Post { vdfs } => 0xB057_0000_0000_0000 | vdfs as u64,
        }
    }

    /// Whether this backend's challenge schedule is predictable.
    ///
    /// The stake lottery runs on an epoch schedule and the VDF beacon is a
    /// self-advancing sequential computation — both let a miner compute
    /// future challenges in advance. The hash-chained backends (PoW, space,
    /// space-time) and the ideal Bernoulli draw are unpredictable.
    pub fn challenge_visibility(&self) -> ChallengeVisibility {
        match *self {
            ConsensusBackend::PoStake | ConsensusBackend::Vdf => ChallengeVisibility::Predictable,
            ConsensusBackend::Bernoulli
            | ConsensusBackend::PowLottery
            | ConsensusBackend::PoSpace
            | ConsensusBackend::Post { .. } => ChallengeVisibility::Unpredictable,
        }
    }

    /// Convenience predicate over [`ConsensusBackend::challenge_visibility`]:
    /// whether the adversary can plan around future challenges.
    pub fn adversary_can_plan_ahead(&self) -> bool {
        self.challenge_visibility() == ChallengeVisibility::Predictable
    }

    /// Builds the arrival source realising this backend for resource share
    /// `p`, with all backend-local randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite, or if a [`ConsensusBackend::Post`] budget is zero.
    pub fn source(&self, p: f64, seed: u64) -> Result<Box<dyn ArrivalSource>, ChainError> {
        validate_share("p", p)?;
        Ok(match *self {
            ConsensusBackend::Bernoulli => Box::new(BernoulliSource::for_validated(p)),
            ConsensusBackend::PowLottery => Box::new(PowLotterySource::new(p, seed)?),
            ConsensusBackend::PoStake => Box::new(StakeLotterySource::new(p, seed)?),
            ConsensusBackend::PoSpace => Box::new(SpaceLotterySource::new(p, seed)?),
            ConsensusBackend::Post { vdfs } => Box::new(PostLotterySource::new(p, seed, vdfs)?),
            ConsensusBackend::Vdf => Box::new(VdfLotterySource::new(p, seed)?),
        })
    }

    /// Closed form of this backend's one-step arrival law: the probability
    /// that the next block is adversarial when the adversary mines on
    /// `sigma` positions with resource share `p`.
    ///
    /// Every backend except the space-time miner realises the ideal law
    /// `pσ / (1 − p + pσ)` exactly; the space-time miner's VDF budget `k`
    /// caps the positions that count, giving
    /// `p·min(σ, k) / (1 − p + p·min(σ, k))` — the one place the resource
    /// model genuinely differs from the Bernoulli ideal.
    ///
    /// ```
    /// use sm_chain::ConsensusBackend;
    ///
    /// let ideal = ConsensusBackend::Bernoulli.closed_form_win_probability(0.3, 3)?;
    /// assert!((ideal - 0.9 / 1.6).abs() < 1e-12);
    /// // Two VDFs cap the three positions down to two:
    /// let capped = ConsensusBackend::Post { vdfs: 2 }.closed_form_win_probability(0.3, 3)?;
    /// assert!((capped - 0.6 / 1.3).abs() < 1e-12);
    /// assert!(capped < ideal);
    /// # Ok::<(), sm_chain::ChainError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn closed_form_win_probability(&self, p: f64, sigma: usize) -> Result<f64, ChainError> {
        validate_share("p", p)?;
        Ok(match *self {
            ConsensusBackend::Post { vdfs } => lottery_win_probability(p, sigma.min(vdfs)),
            _ => lottery_win_probability(p, sigma),
        })
    }
}

impl fmt::Display for ConsensusBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The ideal arrival law `pσ / (1 − p + pσ)`, clamped to `[0, 1]` (and `0`
/// when the denominator degenerates at `p = 1, σ = 0`).
fn lottery_win_probability(p: f64, sigma: usize) -> f64 {
    let sigma_f = sigma as f64;
    let denominator = (1.0 - p) + p * sigma_f;
    if denominator > 0.0 {
        (p * sigma_f / denominator).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Staker id of the adversarial coalition in the stake lottery.
const ADVERSARY_STAKER: StakerId = StakerId(0xAD);
/// Staker id aggregating the honest stake in the stake lottery.
const HONEST_STAKER: StakerId = StakerId(0x40);
/// Epoch length of the stake lottery's predictable challenge schedule.
const STAKE_EPOCH_LENGTH: u64 = 32;
/// Plot size of the space-race and space-time plots. Small enough that a
/// per-step lookup is cheap, large enough to exercise the real plot scan.
const PLOT_SIZE: usize = 32;
/// Sequential iterations of the space-time miner's and the beacon's VDFs.
/// Kept tiny: the arrival law only consumes the output digest, and the
/// conformance estimator evaluates one VDF per simulated step.
const VDF_ITERATIONS: u64 = 8;

/// A stake-lottery arrival source (the `(p, ∞)`-mining regime).
///
/// Each step elects the producer through a real [`ProofOfStake`] eligibility
/// proof: the adversarial coalition stakes `p·σ` (one unit per mined
/// position — cheap proofs make mining on many blocks free), the honest rest
/// stakes `1 − p`, and the adversary wins the slot iff its hash-uniform
/// lottery value falls below its stake share `pσ / (1 − p + pσ)` — the exact
/// arrival law. Challenges come from the Ouroboros-like
/// [`PredictableSchedule`], so this backend declares
/// [`ChallengeVisibility::Predictable`].
///
/// Deterministic per seed; never touches the simulation RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct StakeLotterySource {
    p: f64,
    schedule: PredictableSchedule,
    genesis: Digest,
    slot: u64,
}

impl StakeLotterySource {
    /// Creates the stake lottery for resource share `p`, with epoch
    /// randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(p: f64, seed: u64) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        Ok(StakeLotterySource {
            p,
            schedule: PredictableSchedule::new(STAKE_EPOCH_LENGTH, seed),
            genesis: hash_concat(&[b"postake-genesis", &seed.to_be_bytes()]),
            slot: 0,
        })
    }
}

impl ArrivalSource for StakeLotterySource {
    fn next_block(&mut self, _rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        let slot = self.slot;
        self.slot += 1;
        // The schedule ignores the parent by construction (predictability);
        // the genesis digest only keys the per-seed stream.
        let challenge = self.schedule.challenge(&self.genesis, slot);
        let table = ProofOfStake::new(vec![
            (ADVERSARY_STAKER, self.p * sigma as f64),
            (HONEST_STAKER, 1.0 - self.p),
        ]);
        match table.prove(&challenge, slot, ADVERSARY_STAKER, 1.0) {
            Some(proof) => {
                debug_assert!(table.verify(&challenge, &proof, 1.0));
                let digest = hash_concat(&[b"postake-win", &challenge.0, &slot.to_be_bytes()]);
                ArrivalEvent::Adversary {
                    position: slot_for(&digest, sigma),
                }
            }
            None => ArrivalEvent::Honest,
        }
    }

    fn name(&self) -> &'static str {
        "postake"
    }
}

/// A proof-of-space arrival source: an exponential quality race between the
/// adversary's plot (weight `p·σ`) and the honest plot (weight `1 − p`).
///
/// Each step both sides answer the challenge from their real
/// [`ProofOfSpace`] plots; the proofs' digests seed two independent
/// uniforms, mapped to exponential arrival times with the respective
/// resource weights. The faster side produces the block, which realises the
/// ideal law `pσ / (1 − p + pσ)` exactly. The challenge chain advances
/// through the Bitcoin-like [`UnpredictableSchedule`] over the produced
/// block, so the adversary cannot grind ahead.
///
/// Deterministic per seed; never touches the simulation RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceLotterySource {
    p: f64,
    adversary_plot: ProofOfSpace,
    honest_plot: ProofOfSpace,
    schedule: UnpredictableSchedule,
    challenge: Digest,
    height: u64,
}

impl SpaceLotterySource {
    /// Creates the space race for resource share `p`, with both plots and
    /// the genesis challenge derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(p: f64, seed: u64) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        Ok(SpaceLotterySource {
            p,
            adversary_plot: ProofOfSpace::plot(seed ^ 0xADD1, PLOT_SIZE),
            honest_plot: ProofOfSpace::plot(seed ^ 0x40E5, PLOT_SIZE),
            schedule: UnpredictableSchedule,
            challenge: hash_concat(&[b"pospace-genesis", &seed.to_be_bytes()]),
            height: 0,
        })
    }

    /// Hash-uniform draw in `[0, 1)` tied to one side's space proof.
    fn draw(&self, tag: &[u8], proof: &SpaceProof) -> f64 {
        hash_concat(&[
            tag,
            &self.challenge.0,
            &proof.value.to_be_bytes(),
            &proof.quality.to_be_bytes(),
        ])
        .as_unit_interval()
    }

    /// Advances the challenge chain past the block described by `digest`.
    fn advance(&mut self, digest: Digest) {
        self.height += 1;
        self.challenge = self.schedule.challenge(&digest, self.height);
    }
}

/// Exponential arrival time for a uniform draw under a resource weight;
/// zero-weight sides never arrive.
fn race_time(weight: f64, uniform: f64) -> f64 {
    if weight > 0.0 {
        -(1.0 - uniform).ln() / weight
    } else {
        f64::INFINITY
    }
}

impl ArrivalSource for SpaceLotterySource {
    fn next_block(&mut self, _rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        let adversary_proof = self.adversary_plot.prove(&self.challenge);
        let honest_proof = self.honest_plot.prove(&self.challenge);
        debug_assert!(self
            .adversary_plot
            .verify(&self.challenge, &adversary_proof));
        let adversary_time = race_time(
            self.p * sigma as f64,
            self.draw(b"pospace-adversary", &adversary_proof),
        );
        let honest_time = race_time(1.0 - self.p, self.draw(b"pospace-honest", &honest_proof));
        // Honest wins ties (measure zero): a degenerate double-infinity at
        // p = 1, σ = 0 must not mint adversarial blocks from nothing.
        if adversary_time < honest_time {
            let digest = hash_concat(&[
                b"pospace-win",
                &self.challenge.0,
                &adversary_proof.value.to_be_bytes(),
            ]);
            self.advance(digest);
            ArrivalEvent::Adversary {
                position: slot_for(&digest, sigma),
            }
        } else {
            let digest = hash_concat(&[
                b"pospace-lose",
                &self.challenge.0,
                &honest_proof.value.to_be_bytes(),
            ]);
            self.advance(digest);
            ArrivalEvent::Honest
        }
    }

    fn name(&self) -> &'static str {
        "pospace"
    }
}

/// A Chia-style space-time arrival source: the miner's VDF budget caps how
/// many of its `σ` positions it can extend concurrently.
///
/// Each step the miner produces one real combined [`ProofOfSpaceTime`]
/// proof (plot lookup + sequential VDF); the VDF output seeds the lottery
/// uniform, thresholded at `p·σ′ / (1 − p + p·σ′)` where
/// `σ′ = min(σ, num_vdfs)` — the bounded-`k` arrival law. This is the one
/// backend whose resource model genuinely differs from the Bernoulli ideal:
/// whenever the attack strategy mines on more positions than the miner has
/// VDF processors, the surplus positions are dead weight.
///
/// Deterministic per seed; never touches the simulation RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct PostLotterySource {
    p: f64,
    miner: ProofOfSpaceTime,
    schedule: UnpredictableSchedule,
    challenge: Digest,
    height: u64,
}

impl PostLotterySource {
    /// Creates the space-time lottery for resource share `p` and a miner
    /// owning `vdfs` VDF processors, all randomness derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite, or if `vdfs` is zero.
    pub fn new(p: f64, seed: u64, vdfs: usize) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        if vdfs == 0 {
            return Err(ChainError::InvalidParameter {
                name: "vdfs",
                constraint: "must be at least 1",
            });
        }
        Ok(PostLotterySource {
            p,
            miner: ProofOfSpaceTime::new(seed, PLOT_SIZE, VDF_ITERATIONS, vdfs),
            schedule: UnpredictableSchedule,
            challenge: hash_concat(&[b"post-genesis", &seed.to_be_bytes()]),
            height: 0,
        })
    }

    /// Advances the challenge chain past the block described by `digest`.
    fn advance(&mut self, digest: Digest) {
        self.height += 1;
        self.challenge = self.schedule.challenge(&digest, self.height);
    }
}

impl ArrivalSource for PostLotterySource {
    fn next_block(&mut self, _rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        // The VDF budget is the paper's k: only min(σ, k) positions can be
        // worked on (`ProofOfSpaceTime::prove` returns None once all
        // processors are busy, which is what makes the cap real).
        let workable = sigma.min(self.miner.num_vdfs());
        let ratio = lottery_win_probability(self.p, workable);
        match self.miner.prove(&self.challenge, 0) {
            Some(proof) => {
                debug_assert!(self.miner.verify(&self.challenge, &proof));
                let uniform = hash_concat(&[b"post-draw", &self.challenge.0, &proof.time.output.0])
                    .as_unit_interval();
                if uniform < ratio {
                    let digest = proof.time.output;
                    self.advance(digest);
                    ArrivalEvent::Adversary {
                        position: slot_for(&digest, workable),
                    }
                } else {
                    let digest =
                        hash_concat(&[b"post-lose", &self.challenge.0, &proof.time.output.0]);
                    self.advance(digest);
                    ArrivalEvent::Honest
                }
            }
            // Unreachable (the constructor guarantees at least one free
            // VDF at busy_vdfs = 0), kept total instead of panicking.
            None => {
                let digest = hash_concat(&[b"post-stalled", &self.challenge.0]);
                self.advance(digest);
                ArrivalEvent::Honest
            }
        }
    }

    fn name(&self) -> &'static str {
        "post"
    }
}

/// A VDF-sequenced arrival source: a self-advancing sequential beacon draws
/// the lottery.
///
/// Each step evaluates a real [`Vdf`] on the beacon state; the output
/// digest both becomes the next beacon state and seeds the lottery uniform,
/// thresholded at the ideal law `pσ / (1 − p + pσ)`. Because the beacon
/// advances independently of which blocks get produced, the entire schedule
/// is computable in advance — this backend declares
/// [`ChallengeVisibility::Predictable`].
///
/// Deterministic per seed; never touches the simulation RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct VdfLotterySource {
    p: f64,
    vdf: Vdf,
    beacon: Digest,
}

impl VdfLotterySource {
    /// Creates the beacon lottery for resource share `p`, with the initial
    /// beacon state derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidParameter`] if `p` lies outside `[0, 1]`
    /// or is not finite.
    pub fn new(p: f64, seed: u64) -> Result<Self, ChainError> {
        validate_share("p", p)?;
        Ok(VdfLotterySource {
            p,
            vdf: Vdf::new(VDF_ITERATIONS, VDF_ITERATIONS),
            beacon: hash_concat(&[b"vdf-genesis", &seed.to_be_bytes()]),
        })
    }
}

impl ArrivalSource for VdfLotterySource {
    fn next_block(&mut self, _rng: &mut StdRng, sigma: usize) -> ArrivalEvent {
        let proof = self.vdf.evaluate(&self.beacon);
        debug_assert!(self.vdf.verify(&self.beacon, &proof));
        self.beacon = proof.output;
        let uniform = hash_concat(&[b"vdf-draw", &proof.output.0]).as_unit_interval();
        if uniform < lottery_win_probability(self.p, sigma) {
            ArrivalEvent::Adversary {
                position: slot_for(&proof.output, sigma),
            }
        } else {
            ArrivalEvent::Honest
        }
    }

    fn name(&self) -> &'static str {
        "vdf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The `frequency` harness of the arrival tests, generalised over the
    /// backend descriptor: builds the source from `(p, seed)` and measures
    /// the empirical adversarial-arrival frequency.
    fn frequency(backend: ConsensusBackend, p: f64, sigma: usize, draws: usize) -> f64 {
        let mut source = backend.source(p, 11).expect("valid share");
        let mut rng = StdRng::seed_from_u64(7);
        let mut adversary = 0usize;
        for _ in 0..draws {
            if let ArrivalEvent::Adversary { position } = source.next_block(&mut rng, sigma) {
                assert!(position < sigma, "position {position} out of range");
                adversary += 1;
            }
        }
        adversary as f64 / draws as f64
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        let mut family = ConsensusBackend::default_family();
        family.push(ConsensusBackend::Post { vdfs: 1 });
        family.push(ConsensusBackend::Post { vdfs: 17 });
        for backend in family {
            assert_eq!(
                ConsensusBackend::from_label(&backend.label()),
                Some(backend),
                "label {} does not round-trip",
                backend.label()
            );
        }
        for junk in [
            "",
            "Bernoulli",
            "bernoulli ",
            "pow",
            "post",
            "post()",
            "post(0)",
            "post(-1)",
            "post(+2)",
            "post(two)",
            "post(2",
            "vdf(3)",
        ] {
            assert_eq!(
                ConsensusBackend::from_label(junk),
                None,
                "junk label {junk:?} parsed"
            );
        }
    }

    #[test]
    fn seed_salts_are_distinct_and_bernoulli_is_zero() {
        assert_eq!(ConsensusBackend::Bernoulli.seed_salt(), 0);
        let mut family = ConsensusBackend::default_family();
        family.push(ConsensusBackend::Post { vdfs: 1 });
        family.push(ConsensusBackend::Post { vdfs: 3 });
        let mut salts: Vec<u64> = family.iter().map(ConsensusBackend::seed_salt).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), family.len(), "salts collide");
    }

    #[test]
    fn every_backend_matches_its_closed_form_frequency() {
        let p = 0.3;
        let sigma = 3;
        for backend in ConsensusBackend::default_family() {
            let expected = backend.closed_form_win_probability(p, sigma).unwrap();
            let freq = frequency(backend, p, sigma, 40_000);
            assert!(
                (freq - expected).abs() < 0.01,
                "{backend}: freq {freq} vs closed form {expected}"
            );
        }
    }

    #[test]
    fn only_the_vdf_budget_bends_the_law_away_from_the_ideal() {
        let p = 0.3;
        let sigma = 3;
        let ideal = ConsensusBackend::Bernoulli
            .closed_form_win_probability(p, sigma)
            .unwrap();
        for backend in ConsensusBackend::default_family() {
            let law = backend.closed_form_win_probability(p, sigma).unwrap();
            match backend {
                ConsensusBackend::Post { vdfs } if vdfs < sigma => {
                    assert!(law < ideal, "{backend}: capped law should fall short")
                }
                _ => assert!(
                    (law - ideal).abs() < 1e-15,
                    "{backend}: law {law} vs ideal {ideal}"
                ),
            }
        }
        // With enough VDFs the space-time law coincides with the ideal.
        let roomy = ConsensusBackend::Post { vdfs: 8 }
            .closed_form_win_probability(p, sigma)
            .unwrap();
        assert!((roomy - ideal).abs() < 1e-15);
    }

    #[test]
    fn every_backend_handles_degenerate_resource_splits() {
        for backend in ConsensusBackend::default_family() {
            let mut none = backend.source(0.0, 1).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..200 {
                assert_eq!(
                    none.next_block(&mut rng, 4),
                    ArrivalEvent::Honest,
                    "{backend} minted at p = 0"
                );
            }
            let mut all = backend.source(1.0, 1).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..200 {
                assert!(
                    matches!(all.next_block(&mut rng, 2), ArrivalEvent::Adversary { .. }),
                    "{backend} lost a block at p = 1"
                );
            }
        }
    }

    #[test]
    fn proof_backed_sources_are_deterministic_and_ignore_the_rng() {
        for backend in ConsensusBackend::default_family() {
            if backend == ConsensusBackend::Bernoulli {
                continue; // shares the simulation RNG by design
            }
            let draw_all = |seed: u64, rng_seed: u64| {
                let mut source = backend.source(0.35, seed).unwrap();
                let mut rng = StdRng::seed_from_u64(rng_seed);
                (0..300)
                    .map(|_| source.next_block(&mut rng, 2))
                    .collect::<Vec<_>>()
            };
            assert_eq!(draw_all(5, 1), draw_all(5, 99), "{backend} reads the RNG");
            assert_ne!(draw_all(5, 1), draw_all(6, 1), "{backend} ignores its seed");
        }
    }

    #[test]
    fn post_budget_caps_workable_positions() {
        // One VDF: every adversarial block must sit on position 0 even when
        // the strategy mines on four positions, and the frequency follows
        // the capped law (σ′ = 1), not the ideal (σ = 4).
        let backend = ConsensusBackend::Post { vdfs: 1 };
        let p = 0.3;
        let sigma = 4;
        let mut source = backend.source(p, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2_000 {
            if let ArrivalEvent::Adversary { position } = source.next_block(&mut rng, sigma) {
                assert_eq!(position, 0, "budget of one VDF allows only position 0");
            }
        }
        let capped = backend.closed_form_win_probability(p, sigma).unwrap();
        assert!((capped - p).abs() < 1e-15, "σ′ = 1 reduces the law to p");
        let freq = frequency(backend, p, sigma, 40_000);
        assert!((freq - capped).abs() < 0.01, "freq {freq} vs {capped}");
    }

    #[test]
    fn predictable_backends_declare_the_planning_capability() {
        use ChallengeVisibility::{Predictable, Unpredictable};
        let expectations = [
            (ConsensusBackend::Bernoulli, Unpredictable),
            (ConsensusBackend::PowLottery, Unpredictable),
            (ConsensusBackend::PoStake, Predictable),
            (ConsensusBackend::PoSpace, Unpredictable),
            (ConsensusBackend::Post { vdfs: 2 }, Unpredictable),
            (ConsensusBackend::Vdf, Predictable),
        ];
        for (backend, visibility) in expectations {
            assert_eq!(backend.challenge_visibility(), visibility, "{backend}");
            assert_eq!(
                backend.adversary_can_plan_ahead(),
                visibility == Predictable
            );
        }
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        let bad_share = ChainError::InvalidParameter {
            name: "p",
            constraint: "must lie in [0, 1]",
        };
        for backend in ConsensusBackend::default_family() {
            assert_eq!(
                backend.source(1.5, 1).err(),
                Some(bad_share),
                "{backend} accepted p = 1.5"
            );
        }
        assert!(matches!(
            ConsensusBackend::PoStake.source(f64::NAN, 1),
            Err(ChainError::InvalidParameter { name: "p", .. })
        ));
        assert!(matches!(
            ConsensusBackend::Bernoulli.closed_form_win_probability(-0.2, 3),
            Err(ChainError::InvalidParameter { name: "p", .. })
        ));
        assert_eq!(
            PostLotterySource::new(0.3, 1, 0),
            Err(ChainError::InvalidParameter {
                name: "vdfs",
                constraint: "must be at least 1",
            })
        );
    }
}
