//! Blocks and the block tree.

/// Identifier of a block within a [`BlockTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// Who produced a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinerClass {
    /// Produced by the honest miners.
    Honest,
    /// Produced by the adversarial coalition.
    Adversary,
}

#[derive(Debug, Clone)]
struct BlockRecord {
    parent: Option<BlockId>,
    owner: MinerClass,
    height: u64,
}

/// An append-only tree of blocks rooted at a genesis block.
///
/// # Example
///
/// ```
/// use sm_chain::{BlockTree, MinerClass};
///
/// let mut tree = BlockTree::new();
/// let genesis = tree.genesis();
/// let a = tree.add_block(genesis, MinerClass::Honest);
/// let b = tree.add_block(a, MinerClass::Adversary);
/// assert_eq!(tree.height(b), 2);
/// assert!(tree.is_ancestor(genesis, b));
/// ```
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: Vec<BlockRecord>,
}

impl Default for BlockTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockTree {
    /// Creates a tree containing only the genesis block (honest-owned, height 0).
    pub fn new() -> Self {
        BlockTree {
            blocks: vec![BlockRecord {
                parent: None,
                owner: MinerClass::Honest,
                height: 0,
            }],
        }
    }

    /// The genesis block.
    pub fn genesis(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of blocks in the tree (including genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the tree only contains the genesis block.
    pub fn is_empty(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Appends a block with the given parent and owner and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn add_block(&mut self, parent: BlockId, owner: MinerClass) -> BlockId {
        let parent_height = self.height(parent);
        self.blocks.push(BlockRecord {
            parent: Some(parent),
            owner,
            height: parent_height + 1,
        });
        BlockId(self.blocks.len() - 1)
    }

    /// Height of a block (genesis has height 0).
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn height(&self, block: BlockId) -> u64 {
        self.blocks[block.0].height
    }

    /// Owner of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn owner(&self, block: BlockId) -> MinerClass {
        self.blocks[block.0].owner
    }

    /// Parent of a block (`None` for genesis).
    ///
    /// # Panics
    ///
    /// Panics if the block does not exist.
    pub fn parent(&self, block: BlockId) -> Option<BlockId> {
        self.blocks[block.0].parent
    }

    /// Whether `ancestor` lies on the path from `descendant` to genesis
    /// (a block is an ancestor of itself).
    pub fn is_ancestor(&self, ancestor: BlockId, descendant: BlockId) -> bool {
        let mut current = Some(descendant);
        while let Some(block) = current {
            if block == ancestor {
                return true;
            }
            if self.height(block) < self.height(ancestor) {
                return false;
            }
            current = self.parent(block);
        }
        false
    }

    /// The chain from genesis to `tip`, in genesis-first order.
    pub fn chain_to(&self, tip: BlockId) -> Vec<BlockId> {
        let mut chain = Vec::with_capacity(self.height(tip) as usize + 1);
        let mut current = Some(tip);
        while let Some(block) = current {
            chain.push(block);
            current = self.parent(block);
        }
        chain.reverse();
        chain
    }

    /// Counts the blocks of each owner class on the chain from genesis to
    /// `tip`, excluding genesis. Returns `(honest, adversary)`.
    pub fn ownership_counts(&self, tip: BlockId) -> (u64, u64) {
        let mut honest = 0;
        let mut adversary = 0;
        for block in self.chain_to(tip) {
            if block == self.genesis() {
                continue;
            }
            match self.owner(block) {
                MinerClass::Honest => honest += 1,
                MinerClass::Adversary => adversary += 1,
            }
        }
        (honest, adversary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_tree_is_empty() {
        let tree = BlockTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(tree.genesis()), 0);
        assert_eq!(tree.parent(tree.genesis()), None);
    }

    #[test]
    fn heights_and_parents_follow_structure() {
        let mut tree = BlockTree::new();
        let a = tree.add_block(tree.genesis(), MinerClass::Honest);
        let b = tree.add_block(a, MinerClass::Adversary);
        let c = tree.add_block(tree.genesis(), MinerClass::Adversary);
        assert_eq!(tree.height(a), 1);
        assert_eq!(tree.height(b), 2);
        assert_eq!(tree.height(c), 1);
        assert_eq!(tree.parent(b), Some(a));
        assert!(!tree.is_empty());
    }

    #[test]
    fn ancestry_checks() {
        let mut tree = BlockTree::new();
        let a = tree.add_block(tree.genesis(), MinerClass::Honest);
        let b = tree.add_block(a, MinerClass::Honest);
        let fork = tree.add_block(tree.genesis(), MinerClass::Adversary);
        assert!(tree.is_ancestor(a, b));
        assert!(tree.is_ancestor(b, b));
        assert!(tree.is_ancestor(tree.genesis(), fork));
        assert!(!tree.is_ancestor(a, fork));
        assert!(!tree.is_ancestor(b, a));
    }

    #[test]
    fn chain_and_ownership_counts() {
        let mut tree = BlockTree::new();
        let a = tree.add_block(tree.genesis(), MinerClass::Honest);
        let b = tree.add_block(a, MinerClass::Adversary);
        let c = tree.add_block(b, MinerClass::Adversary);
        let chain = tree.chain_to(c);
        assert_eq!(chain, vec![tree.genesis(), a, b, c]);
        assert_eq!(tree.ownership_counts(c), (1, 2));
    }
}
