//! Measurement of chain quality and relative revenue.

/// Result of a simulation run: block counts over the stable part of the main
/// chain and the derived fairness metrics of Section 2.2 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Name of the adversary strategy that was simulated.
    pub strategy: String,
    /// Number of discrete time steps simulated.
    pub steps: usize,
    /// Honest blocks on the stable main chain.
    pub honest_blocks: u64,
    /// Adversarial blocks on the stable main chain.
    pub adversary_blocks: u64,
    /// Final height of the public chain (including the unstable window).
    pub final_height: u64,
}

impl SimulationReport {
    /// Assembles a report.
    pub fn new(
        strategy: String,
        steps: usize,
        honest_blocks: u64,
        adversary_blocks: u64,
        final_height: u64,
    ) -> Self {
        SimulationReport {
            strategy,
            steps,
            honest_blocks,
            adversary_blocks,
            final_height,
        }
    }

    /// Total number of stable blocks counted.
    pub fn total_blocks(&self) -> u64 {
        self.honest_blocks + self.adversary_blocks
    }

    /// Empirical relative revenue of the adversary
    /// (`revenue_A / (revenue_A + revenue_H)`).
    ///
    /// When zero blocks were committed the ratio is `0/0`; instead of
    /// propagating a `NaN` into downstream statistics, the report defines the
    /// value as `0.0` — no committed block means no evidence of adversarial
    /// revenue. [`SimulationReport::chain_quality`] mirrors the convention
    /// with `1.0`. Both are always finite.
    pub fn relative_revenue(&self) -> f64 {
        let total = self.total_blocks();
        if total == 0 {
            return 0.0;
        }
        self.adversary_blocks as f64 / total as f64
    }

    /// Empirical chain quality, the honest fraction of the stable chain.
    ///
    /// Defined as `1.0` when zero blocks were committed (see
    /// [`SimulationReport::relative_revenue`] for the zero-block convention);
    /// never `NaN`.
    pub fn chain_quality(&self) -> f64 {
        let total = self.total_blocks();
        if total == 0 {
            return 1.0;
        }
        self.honest_blocks as f64 / total as f64
    }

    /// Empirical block rate: stable blocks produced per simulated step.
    pub fn blocks_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.total_blocks() as f64 / self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(honest: u64, adversary: u64) -> SimulationReport {
        SimulationReport::new(
            "test".to_string(),
            100,
            honest,
            adversary,
            honest + adversary,
        )
    }

    #[test]
    fn revenue_and_quality_are_complementary() {
        let r = report(70, 30);
        assert!((r.relative_revenue() - 0.3).abs() < 1e-12);
        assert!((r.chain_quality() - 0.7).abs() < 1e-12);
        assert_eq!(r.total_blocks(), 100);
        assert!((r.blocks_per_step() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_revenue() {
        let r = report(0, 0);
        assert_eq!(r.relative_revenue(), 0.0);
        assert_eq!(r.chain_quality(), 1.0);
        assert_eq!(r.blocks_per_step(), 0.0);
    }

    #[test]
    fn zero_committed_blocks_yield_finite_defined_metrics() {
        // 0/0 must not leak a NaN into the Monte-Carlo statistics: an empty
        // stable chain reports zero revenue and full quality by convention.
        for steps in [0, 100] {
            let r = SimulationReport::new("empty".into(), steps, 0, 0, 0);
            assert!(r.relative_revenue().is_finite());
            assert!(r.chain_quality().is_finite());
            assert!(r.blocks_per_step().is_finite());
            assert_eq!(r.relative_revenue(), 0.0);
            assert_eq!(r.chain_quality(), 1.0);
        }
    }

    #[test]
    fn zero_steps_is_handled() {
        let r = SimulationReport::new("x".into(), 0, 1, 1, 2);
        assert_eq!(r.blocks_per_step(), 0.0);
    }
}
