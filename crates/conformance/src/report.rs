//! Conformance reports: per-point comparison of the Monte-Carlo confidence
//! interval against the solver's ε-certificate, and the aggregate verdict.

use crate::Estimate;
use std::fmt::Write as _;

/// One `(d, f, p, γ)` grid point of a conformance run: the solver's
/// certified revenue bracket next to one Monte-Carlo estimate per consensus
/// backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformancePoint {
    /// Label of the attack scenario the point was solved and witnessed under
    /// (`"optimal"` for the paper's unrestricted model).
    pub scenario: String,
    /// Attack depth `d` of the point.
    pub depth: usize,
    /// Forking number `f` of the point.
    pub forks: usize,
    /// Maximal private fork length `l`.
    pub max_fork_length: usize,
    /// Adversarial resource share `p`.
    pub p: f64,
    /// Switching probability `γ`.
    pub gamma: f64,
    /// Certified lower end of the solver's revenue bracket (`β_low`).
    pub certified_lower: f64,
    /// Certified upper end of the solver's revenue bracket (`β_up`).
    pub certified_upper: f64,
    /// Total slack widening the certificate in the comparison: the solver's
    /// floating-point noise margin plus the statistical margin of the
    /// one-sided CI test (`β_low` is the witnessed strategy's exact revenue,
    /// so the true value sits on the certificate edge); see
    /// `ConformanceSettings::certificate_slack` and
    /// `ConformanceSettings::statistical_slack`.
    pub slack: f64,
    /// Exact expected relative revenue of the exported strategy (lies inside
    /// the certificate).
    pub strategy_revenue: f64,
    /// Number of decision views the exported table covers.
    pub table_entries: usize,
    /// One Monte-Carlo estimate per consensus backend, in configuration
    /// order.
    pub estimates: Vec<Estimate>,
}

impl ConformancePoint {
    /// The certificate widened by the numerical slack: the interval the
    /// conformance comparison actually runs against.
    pub fn certificate(&self) -> (f64, f64) {
        (
            self.certified_lower - self.slack,
            self.certified_upper + self.slack,
        )
    }

    /// Whether every backend's confidence interval overlaps the (slack-
    /// widened) certificate.
    pub fn conforms(&self) -> bool {
        let (lower, upper) = self.certificate();
        self.estimates
            .iter()
            .all(|estimate| estimate.overlaps(lower, upper))
    }

    /// Whether every other backend's confidence interval overlaps the
    /// first (reference) backend's — the ideal-vs-proof-backed cross-check,
    /// with the reference conventionally the Bernoulli ideal
    /// (`ConformanceSettings::backends` configuration order).
    ///
    /// This is `K − 1` comparisons against one anchor, *not* all pairs:
    /// the backends estimate the same law, so demanding pairwise overlap of
    /// `K(K−1)/2` independent confidence intervals fails spuriously as the
    /// matrix grows (a multiple-comparison effect on the noisiest pair),
    /// while anchoring each backend to the shared reference keeps the check
    /// calibrated at any `K`. With the historical two-backend matrix the two
    /// formulations coincide.
    pub fn sources_agree(&self) -> bool {
        match self.estimates.split_first() {
            Some((reference, rest)) => rest.iter().all(|other| reference.agrees_with(other)),
            None => true,
        }
    }

    /// Largest distance between any backend's confidence interval and the
    /// slack-widened certificate (0 if and only if the point conforms).
    pub fn worst_gap(&self) -> f64 {
        let (lower, upper) = self.certificate();
        self.estimates
            .iter()
            .map(|estimate| estimate.gap_to(lower, upper))
            .fold(0.0, f64::max)
    }

    /// Total unknown-view fallbacks across all backends' replicas.
    pub fn unknown_views(&self) -> u64 {
        self.estimates.iter().map(|e| e.unknown_views).sum()
    }
}

/// The full grid's conformance verdict: one [`ConformancePoint`] per solved
/// `(d, f, p, γ)` point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConformanceReport {
    /// Points ordered by γ (input order), then `(d, f)` (grid order), then
    /// scenario (configuration order), then `p` (input order).
    pub points: Vec<ConformancePoint>,
}

impl ConformanceReport {
    /// Number of grid points in the report.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether every point's every backend conforms to its certificate.
    pub fn all_conform(&self) -> bool {
        self.points.iter().all(ConformancePoint::conforms)
    }

    /// Whether the backends' estimates agree with each other at every
    /// point.
    pub fn sources_agree(&self) -> bool {
        self.points.iter().all(ConformancePoint::sources_agree)
    }

    /// The points whose confidence interval misses the certificate.
    pub fn violations(&self) -> Vec<&ConformancePoint> {
        self.points.iter().filter(|p| !p.conforms()).collect()
    }

    /// Largest CI-to-certificate gap across the grid (0 when everything
    /// conforms).
    pub fn worst_gap(&self) -> f64 {
        self.points
            .iter()
            .map(ConformancePoint::worst_gap)
            .fold(0.0, f64::max)
    }

    /// Total unknown-view fallbacks across the whole grid.
    pub fn unknown_views(&self) -> u64 {
        self.points
            .iter()
            .map(ConformancePoint::unknown_views)
            .sum()
    }

    /// Renders the report as an aligned text table, one row per (point,
    /// backend). The `backend` column prints the descriptor's label, so new
    /// backends render correctly without touching the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>20} {:>5} {:>5} {:>6} {:>6} {:>12} {:>22} {:>20} {:>9} {:>8} {:>7}",
            "scenario",
            "d",
            "f",
            "p",
            "gamma",
            "backend",
            "certificate",
            "simulated CI",
            "replicas",
            "unknown",
            "verdict"
        );
        for point in &self.points {
            let (lower, upper) = point.certificate();
            for estimate in &point.estimates {
                let ok = estimate.overlaps(lower, upper);
                let _ = writeln!(
                    out,
                    "{:>20} {:>5} {:>5} {:>6.2} {:>6.2} {:>12} [{:>9.6}, {:>9.6}] [{:>8.6}, {:>8.6}] {:>9} {:>8} {:>7}",
                    point.scenario,
                    point.depth,
                    point.forks,
                    point.p,
                    point.gamma,
                    estimate.backend.label(),
                    point.certified_lower,
                    point.certified_upper,
                    estimate.lower(),
                    estimate.upper(),
                    estimate.replicas,
                    estimate.unknown_views,
                    if ok { "ok" } else { "MISS" }
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_chain::ConsensusBackend;

    fn estimate(backend: ConsensusBackend, mean: f64, half_width: f64) -> Estimate {
        Estimate {
            backend,
            mean,
            variance: 1e-6,
            half_width,
            replicas: 8,
            steps_per_replica: 1000,
            converged: true,
            unknown_views: 0,
        }
    }

    fn point(mean: f64) -> ConformancePoint {
        ConformancePoint {
            scenario: "optimal".to_string(),
            depth: 2,
            forks: 1,
            max_fork_length: 4,
            p: 0.3,
            gamma: 0.5,
            certified_lower: 0.33,
            certified_upper: 0.34,
            slack: 0.0,
            strategy_revenue: 0.335,
            table_entries: 42,
            estimates: vec![
                estimate(ConsensusBackend::Bernoulli, mean, 0.005),
                estimate(ConsensusBackend::PowLottery, mean + 0.002, 0.005),
            ],
        }
    }

    #[test]
    fn conforming_point_reports_ok() {
        let p = point(0.335);
        assert!(p.conforms());
        assert!(p.sources_agree());
        assert_eq!(p.worst_gap(), 0.0);
        let report = ConformanceReport { points: vec![p] };
        assert!(report.all_conform());
        assert!(report.sources_agree());
        assert!(report.violations().is_empty());
        assert_eq!(report.len(), 1);
        assert!(!report.is_empty());
        let rendered = report.render();
        assert!(rendered.contains("scenario"));
        assert!(rendered.contains("backend"));
        assert!(rendered.contains("optimal"));
        assert!(rendered.contains("bernoulli"));
        assert!(rendered.contains("pow-lottery"));
        assert!(rendered.contains(" ok"));
        assert!(!rendered.contains("MISS"));
    }

    #[test]
    fn violating_point_is_surfaced_with_its_gap() {
        let p = point(0.40);
        assert!(!p.conforms());
        assert!(p.worst_gap() > 0.05);
        let report = ConformanceReport {
            points: vec![point(0.335), p],
        };
        assert!(!report.all_conform());
        assert_eq!(report.violations().len(), 1);
        assert!(report.worst_gap() > 0.05);
        assert!(report.render().contains("MISS"));
    }

    #[test]
    fn source_disagreement_is_detected() {
        let mut p = point(0.335);
        p.estimates[1].mean = 0.36;
        assert!(!p.sources_agree());
    }

    #[test]
    fn nan_estimate_cannot_report_a_zero_gap() {
        // Regression: `gap_to`/`worst_gap` folded with `f64::max`, which
        // silently drops NaN operands — a NaN Monte-Carlo mean (e.g. from a
        // poisoned replica) reported `worst_gap() == 0` while `conforms()`
        // was false, breaking the "0 iff conforms" contract this test pins.
        let mut p = point(f64::NAN);
        assert!(!p.conforms(), "a NaN estimate must not conform");
        assert_eq!(
            p.worst_gap(),
            f64::INFINITY,
            "a NaN estimate must surface an infinite gap, not 0"
        );
        let report = ConformanceReport {
            points: vec![p.clone()],
        };
        assert!(!report.all_conform());
        assert_eq!(report.worst_gap(), f64::INFINITY);
        assert_eq!(report.violations().len(), 1);
        // A NaN half-width poisons the interval the same way.
        p.estimates[0].mean = 0.335;
        p.estimates[0].half_width = f64::NAN;
        assert!(!p.conforms());
        assert_eq!(p.worst_gap(), f64::INFINITY);
    }

    #[test]
    fn worst_gap_is_zero_iff_the_point_conforms() {
        // The invariant the example drivers and CI gate on, across
        // conforming, violating and non-finite estimates.
        for mean in [0.335, 0.40, 0.0, 1.0, f64::NAN] {
            let p = point(mean);
            assert_eq!(
                p.worst_gap() == 0.0,
                p.conforms(),
                "worst_gap/conforms disagree at mean {mean}"
            );
        }
    }

    #[test]
    fn certificate_slack_absorbs_solver_noise() {
        // A CI missing the raw certificate by less than the slack conforms:
        // the solver's bounds are only certified up to its inner precision.
        let mut p = point(0.33 - 0.005 - 5e-10);
        assert!(!p.conforms());
        p.slack = 1e-6;
        assert!(p.conforms());
        assert_eq!(p.certificate(), (0.33 - 1e-6, 0.34 + 1e-6));
        assert_eq!(p.worst_gap(), 0.0);
    }
}
