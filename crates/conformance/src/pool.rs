//! The workspace's shared scoped worker pool for independent indexed jobs.
//!
//! Both the Monte-Carlo estimator (replicas) and the sweep engine (curve
//! jobs, conformance jobs) fan deterministic, independent work items over a
//! [`std::thread::scope`] pool: workers drain an atomic index and results
//! are collected **in job order**, so the output is identical for any worker
//! count — only wall-clock time changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a configured worker count against a job count: `0` means
/// [`std::thread::available_parallelism`], and the result is clamped to
/// `[1, jobs]` so no idle threads are spawned.
pub fn effective_workers(configured: usize, jobs: usize) -> usize {
    let configured = if configured == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    };
    configured.clamp(1, jobs.max(1))
}

/// Runs jobs `0..count` and returns their results in job order, fanning them
/// over `workers` scoped threads (clamped to `[1, count]`; a single worker
/// runs inline without spawning).
///
/// # Panics
///
/// Propagates panics from `job` (a panicking job poisons its slot and the
/// collection phase re-panics).
pub fn run_indexed_jobs<T, F>(workers: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let outcome = job(index);
                *slots[index].lock().expect("job slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("worker pool completed every job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_for_any_worker_count() {
        let reference: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [0, 1, 2, 8, 64] {
            assert_eq!(
                run_indexed_jobs(workers, 37, |i| i * i),
                reference,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn empty_job_lists_are_fine() {
        assert_eq!(run_indexed_jobs(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn effective_workers_resolves_and_clamps() {
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert_eq!(effective_workers(5, 0), 1);
    }
}
