//! Statistical conformance between the exact MDP analysis and the
//! operational selfish-mining process.
//!
//! The paper's central claim is that the mean-payoff MDP analysis and the
//! block-level simulation describe the *same* system; this crate turns that
//! claim into a first-class, certifiable artifact. For a solved grid point it
//!
//! 1. compiles the ε-optimal positional strategy into a simulator table
//!    ([`selfish_mining::StrategyExport`]),
//! 2. estimates the strategy's empirical relative revenue with a batched,
//!    parallel Monte-Carlo estimator ([`estimate_revenue`]) — many seeded
//!    [`sm_chain::Simulator`] replicas fanned over a scoped worker pool,
//!    Welford statistics, a CLT confidence interval and a sequential
//!    stopping rule, bit-identical for any worker count —
//! 3. and compares that confidence interval against the certified
//!    `[β_low, β_up]` revenue bracket of the solve
//!    ([`ConformancePoint`], [`ConformanceReport`]).
//!
//! Replicas can draw block arrivals from any [`ConsensusBackend`]
//! realisation of the arrival lottery — the ideal Bernoulli draw or the
//! proof-backed hashcash, stake, space, space-time and VDF-beacon lotteries
//! of `sm-proofs`; witnessing several backends cross-checks independent
//! realisations of the arrival law against each other *and* against the
//! solver.
//!
//! The `sm-sweep` crate drives this machinery across whole `(p, γ)` grids;
//! `examples/conformance.rs` runs the coarse Figure-2 grid end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimator;
mod report;

pub use estimator::{estimate_revenue, Estimate, EstimatorConfig};
pub use report::{ConformancePoint, ConformanceReport};
// The scheduler primitives lived in a private `pool` module here before they
// were promoted to the shared `sm-scheduler` crate (the sweep engine and the
// query service run the same pool); re-exported so historical imports keep
// compiling.
pub use sm_scheduler::{effective_workers, resolve_budget, run_budgeted_jobs, run_indexed_jobs};

use selfish_mining::experiments::CertifiedSolve;
use selfish_mining::{AttackScenario, SelfishMiningError, StrategyExport};
use sm_chain::{ConsensusBackend, MiningRegime, SimulationConfig, UnknownViewPolicy};
use std::error::Error;
use std::fmt;

/// Errors produced by the conformance subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceError {
    /// An estimator or settings field violates its constraint.
    InvalidConfig {
        /// Name of the offending field.
        name: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// An underlying model-construction or analysis step failed.
    Analysis(SelfishMiningError),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::InvalidConfig { name, constraint } => {
                write!(
                    f,
                    "conformance config field {name} violates constraint: {constraint}"
                )
            }
            ConformanceError::Analysis(err) => write!(f, "analysis error: {err}"),
        }
    }
}

impl Error for ConformanceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConformanceError::Analysis(err) => Some(err),
            ConformanceError::InvalidConfig { .. } => None,
        }
    }
}

impl From<SelfishMiningError> for ConformanceError {
    fn from(err: SelfishMiningError) -> Self {
        ConformanceError::Analysis(err)
    }
}

/// Grid-independent knobs of a conformance pass: everything the Monte-Carlo
/// witness needs except the `(d, f, p, γ)` coordinates, which come from the
/// solved grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceSettings {
    /// Simulated time steps per replica.
    pub steps: usize,
    /// Target half-width of the per-point confidence interval.
    pub tolerance: f64,
    /// Normal quantile scaling the interval (3.0 ≈ 99.7 %).
    pub z_score: f64,
    /// Replicas before the stopping rule is first consulted.
    pub min_replicas: usize,
    /// Replicas per stopping-rule round.
    pub batch: usize,
    /// Hard per-point replica budget.
    pub max_replicas: usize,
    /// Worker threads of the replica pool; `0` = available parallelism. The
    /// estimates are bit-identical for every choice.
    pub workers: usize,
    /// Master seed; per-point seeds mix in the point's coordinates so that
    /// no two grid points share a replica stream.
    pub master_seed: u64,
    /// Numerical slack widening the certificate in the conformance
    /// comparison. The solver certifies `[β_low, β_up]` only up to its inner
    /// precision (e.g. at `p = 0` it reports `β_low ≈ 2·10⁻¹⁰` where the
    /// simulation is exactly 0); the slack absorbs that floating-point noise
    /// without masking real disagreement.
    pub certificate_slack: f64,
    /// Statistical slack widening the certificate in the conformance
    /// comparison, on top of [`ConformanceSettings::certificate_slack`].
    ///
    /// The Dinkelbach solve certifies `β_low` as the *exact* revenue of the
    /// witnessed strategy, so the true value sits on the certificate's lower
    /// edge and the CI-overlap check is a one-sided test: with an exact
    /// variance the miss probability per point-source is `Φ(−z)`, and the
    /// finite-replica variance estimate inflates it further (the statistic
    /// is t-, not normally-distributed). This margin keeps a multi-hundred-
    /// check grid pass reliable without loosening what a real disagreement —
    /// typically ≫ the stopping tolerance — looks like.
    pub statistical_slack: f64,
    /// The consensus backends to witness each point under.
    pub backends: Vec<ConsensusBackend>,
}

impl Default for ConformanceSettings {
    /// Tuned so a coarse-grid pass stays in tens of seconds while the CLT
    /// interval is a few 10⁻³ wide: 60 000 steps per replica, 3σ intervals,
    /// up to 64 replicas stopping at half-width ≤ 4·10⁻³, witnessed under
    /// the ideal Bernoulli lottery and the proof-backed hashcash lottery
    /// (the historical source pair; widen via
    /// [`ConsensusBackend::default_family`] for the full backend matrix).
    fn default() -> Self {
        ConformanceSettings {
            steps: 60_000,
            tolerance: 4e-3,
            z_score: 3.0,
            min_replicas: 4,
            batch: 4,
            max_replicas: 64,
            workers: 1,
            master_seed: 0x5EED_C0DE,
            certificate_slack: 1e-6,
            statistical_slack: 2e-3,
            backends: vec![ConsensusBackend::Bernoulli, ConsensusBackend::PowLottery],
        }
    }
}

impl ConformanceSettings {
    /// The estimator configuration for one `(backend, scenario, d, f, p, γ)`
    /// point. The master seed is mixed with the point's coordinates so every
    /// grid point owns an independent, reproducible replica stream;
    /// non-optimal scenarios additionally fold in their
    /// [`AttackScenario::seed_salt`], and non-Bernoulli backends their
    /// [`ConsensusBackend::seed_salt`], keeping the full backend × scenario
    /// product of streams disjoint while the optimal-scenario Bernoulli
    /// streams stay identical to the pre-scenario subsystem. (The two salt
    /// families live in disjoint `u64` namespaces, so the order-sensitive
    /// folding cannot make a `(scenario, backend)` pair collide with any
    /// other.) Scenarios with a restricted mining split
    /// ([`AttackScenario::restricts_mining_to_tip`]) run their replicas
    /// under the matching simulator [`MiningRegime`].
    #[allow(clippy::too_many_arguments)]
    pub fn estimator_config(
        &self,
        backend: ConsensusBackend,
        scenario: AttackScenario,
        p: f64,
        gamma: f64,
        depth: usize,
        forks: usize,
        max_fork_length: usize,
    ) -> EstimatorConfig {
        let mut seed = self.master_seed;
        for word in [
            p.to_bits(),
            gamma.to_bits(),
            depth as u64,
            forks as u64,
            max_fork_length as u64,
        ] {
            seed = splitmix(seed ^ splitmix(word));
        }
        if scenario != AttackScenario::Optimal {
            seed = splitmix(seed ^ splitmix(scenario.seed_salt()));
        }
        if backend.seed_salt() != 0 {
            seed = splitmix(seed ^ splitmix(backend.seed_salt()));
        }
        let mining = if scenario.restricts_mining_to_tip() {
            MiningRegime::TipOnly
        } else {
            MiningRegime::AllSlots
        };
        EstimatorConfig {
            simulation: SimulationConfig {
                p,
                gamma,
                depth,
                forks_per_block: forks,
                max_fork_length,
                steps: self.steps,
                seed,
                mining,
            },
            tolerance: self.tolerance,
            z_score: self.z_score,
            min_replicas: self.min_replicas,
            batch: self.batch,
            max_replicas: self.max_replicas,
            workers: self.workers,
        }
    }
}

/// SplitMix64 finalizer for all seed derivation in this crate (per-point and
/// per-replica streams share one mixer by design).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Certifies one solved grid point: exports the ε-optimal strategy into the
/// simulator and estimates its revenue under every configured consensus
/// backend.
///
/// The export handle only reads the family's *structure*, so one handle —
/// built via [`StrategyExport::from_family`] (no instantiation at all) or
/// [`StrategyExport::new`] over any `(p, γ)` instantiation — serves every
/// point of its `(scenario, d, f, l)` family; the simulation parameters
/// (including the scenario and its mining regime) come from `solve` itself.
/// The export must be built from the same scenario family the point was
/// solved on — a mismatch is caught by the export's coverage check.
///
/// # Errors
///
/// Propagates export errors ([`SelfishMiningError::InvalidParameter`] for a
/// strategy/model mismatch) and estimator configuration errors.
pub fn certify_point(
    export: &StrategyExport<'_>,
    solve: &CertifiedSolve,
    settings: &ConformanceSettings,
) -> Result<ConformancePoint, ConformanceError> {
    if settings.backends.is_empty() {
        return Err(ConformanceError::InvalidConfig {
            name: "backends",
            constraint: "must name at least one consensus backend",
        });
    }
    // The slacks widen the certificate; a negative one would silently
    // *narrow* it and a non-finite one poisons every comparison, so both are
    // config errors like the estimator's own numeric knobs.
    if !settings.certificate_slack.is_finite() || settings.certificate_slack < 0.0 {
        return Err(ConformanceError::InvalidConfig {
            name: "certificate_slack",
            constraint: "must be finite and non-negative",
        });
    }
    if !settings.statistical_slack.is_finite() || settings.statistical_slack < 0.0 {
        return Err(ConformanceError::InvalidConfig {
            name: "statistical_slack",
            constraint: "must be finite and non-negative",
        });
    }
    // Unknown views wait (and are counted in the report) rather than panic:
    // a replica is allowed to wander where the MDP prunes, and the report
    // surfaces how often that happened.
    let table = export.table_named(
        &solve.strategy,
        UnknownViewPolicy::Wait,
        solve.scenario.label(),
    )?;
    let table_entries = table.len();
    let estimates = settings
        .backends
        .iter()
        .map(|&backend| {
            let config = settings.estimator_config(
                backend,
                solve.scenario,
                solve.p,
                solve.gamma,
                export.depth(),
                export.forks_per_block(),
                export.max_fork_length(),
            );
            estimate_revenue(&config, &table, backend)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConformancePoint {
        scenario: solve.scenario.label(),
        depth: export.depth(),
        forks: export.forks_per_block(),
        max_fork_length: export.max_fork_length(),
        p: solve.p,
        gamma: solve.gamma,
        certified_lower: solve.beta_low,
        certified_upper: solve.beta_up,
        slack: settings.certificate_slack + settings.statistical_slack,
        strategy_revenue: solve.strategy_revenue,
        table_entries,
        estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfish_mining::experiments::attack_curve_certified;
    use selfish_mining::ParametricModel;

    #[test]
    fn certify_point_witnesses_a_small_solve() {
        let family = ParametricModel::build(2, 1, 4).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.3], 5e-3, true).unwrap();
        let settings = ConformanceSettings {
            steps: 30_000,
            max_replicas: 24,
            ..ConformanceSettings::default()
        };
        let point =
            certify_point(&StrategyExport::from_family(&family), &solves[0], &settings).unwrap();
        assert_eq!(point.estimates.len(), 2);
        assert_eq!(point.estimates[0].backend, ConsensusBackend::Bernoulli);
        assert_eq!(point.estimates[1].backend, ConsensusBackend::PowLottery);
        assert_eq!(point.depth, 2);
        assert!(point.table_entries > 0);
        assert!(
            point.conforms(),
            "CI should overlap the certificate: {point:?}"
        );
        assert!(point.sources_agree(), "sources disagree: {point:?}");
    }

    #[test]
    fn per_point_seeds_differ() {
        let settings = ConformanceSettings::default();
        let optimal = AttackScenario::Optimal;
        let bernoulli = ConsensusBackend::Bernoulli;
        let a = settings.estimator_config(bernoulli, optimal, 0.1, 0.5, 2, 1, 4);
        let b = settings.estimator_config(bernoulli, optimal, 0.2, 0.5, 2, 1, 4);
        let c = settings.estimator_config(bernoulli, optimal, 0.1, 0.0, 2, 1, 4);
        assert_ne!(a.simulation.seed, b.simulation.seed);
        assert_ne!(a.simulation.seed, c.simulation.seed);
        // Same coordinates → same seed (reproducibility).
        let again = settings.estimator_config(bernoulli, optimal, 0.1, 0.5, 2, 1, 4);
        assert_eq!(a.simulation.seed, again.simulation.seed);
    }

    #[test]
    fn backend_by_scenario_streams_are_disjoint() {
        // The full backend × scenario product at one grid point: every cell
        // owns its own replica stream, and the Bernoulli column reproduces
        // the historical (backend-less) seeds exactly.
        let settings = ConformanceSettings::default();
        let mut seeds = std::collections::HashMap::new();
        for scenario in AttackScenario::default_family() {
            for backend in ConsensusBackend::default_family() {
                let config = settings.estimator_config(backend, scenario, 0.1, 0.5, 2, 1, 4);
                if let Some(other) = seeds.insert(config.simulation.seed, (backend, scenario)) {
                    panic!("({backend}, {scenario}) shares a replica stream with {other:?}");
                }
            }
        }
        assert_eq!(seeds.len(), 30);
    }

    #[test]
    fn scenario_streams_are_disjoint_and_regimes_match() {
        let settings = ConformanceSettings::default();
        let mut seeds = std::collections::HashSet::new();
        for scenario in AttackScenario::default_family() {
            let config =
                settings.estimator_config(ConsensusBackend::Bernoulli, scenario, 0.1, 0.5, 2, 1, 4);
            assert!(
                seeds.insert(config.simulation.seed),
                "{scenario} shares a replica stream with another scenario"
            );
            let expected = if scenario.restricts_mining_to_tip() {
                MiningRegime::TipOnly
            } else {
                MiningRegime::AllSlots
            };
            assert_eq!(config.simulation.mining, expected, "{scenario}");
        }
    }

    #[test]
    fn invalid_slacks_are_rejected() {
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.2], 1e-2, true).unwrap();
        let export = StrategyExport::from_family(&family);
        for (name, settings) in [
            (
                "certificate_slack",
                ConformanceSettings {
                    certificate_slack: f64::NAN,
                    ..ConformanceSettings::default()
                },
            ),
            (
                "statistical_slack",
                ConformanceSettings {
                    statistical_slack: -1e-3,
                    ..ConformanceSettings::default()
                },
            ),
        ] {
            match certify_point(&export, &solves[0], &settings) {
                Err(ConformanceError::InvalidConfig { name: got, .. }) => assert_eq!(got, name),
                other => panic!("{name}: expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_backend_list_is_rejected() {
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.2], 1e-2, true).unwrap();
        let settings = ConformanceSettings {
            backends: vec![],
            ..ConformanceSettings::default()
        };
        assert!(matches!(
            certify_point(&StrategyExport::from_family(&family), &solves[0], &settings),
            Err(ConformanceError::InvalidConfig {
                name: "backends",
                ..
            })
        ));
    }

    #[test]
    fn certify_point_witnesses_a_proof_backed_backend_matrix() {
        // A cheap-backend slice of the matrix: the same solved point
        // conforms under the stake lottery and the VDF beacon too.
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.25], 5e-3, true).unwrap();
        let settings = ConformanceSettings {
            steps: 20_000,
            max_replicas: 24,
            backends: vec![
                ConsensusBackend::Bernoulli,
                ConsensusBackend::PoStake,
                ConsensusBackend::Vdf,
            ],
            ..ConformanceSettings::default()
        };
        let point =
            certify_point(&StrategyExport::from_family(&family), &solves[0], &settings).unwrap();
        assert_eq!(point.estimates.len(), 3);
        assert!(point.conforms(), "backend matrix misses: {point:?}");
        assert!(point.sources_agree(), "backends disagree: {point:?}");
    }
}
