//! Statistical conformance between the exact MDP analysis and the
//! operational selfish-mining process.
//!
//! The paper's central claim is that the mean-payoff MDP analysis and the
//! block-level simulation describe the *same* system; this crate turns that
//! claim into a first-class, certifiable artifact. For a solved grid point it
//!
//! 1. compiles the ε-optimal positional strategy into a simulator table
//!    ([`selfish_mining::StrategyExport`]),
//! 2. estimates the strategy's empirical relative revenue with a batched,
//!    parallel Monte-Carlo estimator ([`estimate_revenue`]) — many seeded
//!    [`sm_chain::Simulator`] replicas fanned over a scoped worker pool,
//!    Welford statistics, a CLT confidence interval and a sequential
//!    stopping rule, bit-identical for any worker count —
//! 3. and compares that confidence interval against the certified
//!    `[β_low, β_up]` revenue bracket of the solve
//!    ([`ConformancePoint`], [`ConformanceReport`]).
//!
//! Replicas can draw block arrivals from the ideal Bernoulli lottery or from
//! the proof-backed hashcash lottery of `sm-proofs`
//! ([`ArrivalKind`]); running both cross-checks two independent realisations
//! of the arrival law against each other *and* against the solver.
//!
//! The `sm-sweep` crate drives this machinery across whole `(p, γ)` grids;
//! `examples/conformance.rs` runs the coarse Figure-2 grid end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimator;
mod pool;
mod report;

pub use estimator::{estimate_revenue, ArrivalKind, Estimate, EstimatorConfig};
pub use pool::{effective_workers, run_indexed_jobs};
pub use report::{ConformancePoint, ConformanceReport};

use selfish_mining::experiments::CertifiedSolve;
use selfish_mining::{SelfishMiningError, StrategyExport};
use sm_chain::{SimulationConfig, UnknownViewPolicy};
use std::error::Error;
use std::fmt;

/// Errors produced by the conformance subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum ConformanceError {
    /// An estimator or settings field violates its constraint.
    InvalidConfig {
        /// Name of the offending field.
        name: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// An underlying model-construction or analysis step failed.
    Analysis(SelfishMiningError),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::InvalidConfig { name, constraint } => {
                write!(
                    f,
                    "conformance config field {name} violates constraint: {constraint}"
                )
            }
            ConformanceError::Analysis(err) => write!(f, "analysis error: {err}"),
        }
    }
}

impl Error for ConformanceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConformanceError::Analysis(err) => Some(err),
            ConformanceError::InvalidConfig { .. } => None,
        }
    }
}

impl From<SelfishMiningError> for ConformanceError {
    fn from(err: SelfishMiningError) -> Self {
        ConformanceError::Analysis(err)
    }
}

/// Grid-independent knobs of a conformance pass: everything the Monte-Carlo
/// witness needs except the `(d, f, p, γ)` coordinates, which come from the
/// solved grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceSettings {
    /// Simulated time steps per replica.
    pub steps: usize,
    /// Target half-width of the per-point confidence interval.
    pub tolerance: f64,
    /// Normal quantile scaling the interval (3.0 ≈ 99.7 %).
    pub z_score: f64,
    /// Replicas before the stopping rule is first consulted.
    pub min_replicas: usize,
    /// Replicas per stopping-rule round.
    pub batch: usize,
    /// Hard per-point replica budget.
    pub max_replicas: usize,
    /// Worker threads of the replica pool; `0` = available parallelism. The
    /// estimates are bit-identical for every choice.
    pub workers: usize,
    /// Master seed; per-point seeds mix in the point's coordinates so that
    /// no two grid points share a replica stream.
    pub master_seed: u64,
    /// Numerical slack widening the certificate in the conformance
    /// comparison. The solver certifies `[β_low, β_up]` only up to its inner
    /// precision (e.g. at `p = 0` it reports `β_low ≈ 2·10⁻¹⁰` where the
    /// simulation is exactly 0); the slack absorbs that floating-point noise
    /// without masking real disagreement.
    pub certificate_slack: f64,
    /// The arrival realisations to witness each point under.
    pub sources: Vec<ArrivalKind>,
}

impl Default for ConformanceSettings {
    /// Tuned so a coarse-grid pass stays in tens of seconds while the CLT
    /// interval is a few 10⁻³ wide: 60 000 steps per replica, 3σ intervals,
    /// up to 64 replicas stopping at half-width ≤ 4·10⁻³, both arrival
    /// sources.
    fn default() -> Self {
        ConformanceSettings {
            steps: 60_000,
            tolerance: 4e-3,
            z_score: 3.0,
            min_replicas: 4,
            batch: 4,
            max_replicas: 64,
            workers: 1,
            master_seed: 0x5EED_C0DE,
            certificate_slack: 1e-6,
            sources: vec![ArrivalKind::Bernoulli, ArrivalKind::PowLottery],
        }
    }
}

impl ConformanceSettings {
    /// The estimator configuration for one `(d, f, p, γ)` point. The master
    /// seed is mixed with the point's coordinates so every grid point owns
    /// an independent, reproducible replica stream.
    pub fn estimator_config(
        &self,
        p: f64,
        gamma: f64,
        depth: usize,
        forks: usize,
        max_fork_length: usize,
    ) -> EstimatorConfig {
        let mut seed = self.master_seed;
        for word in [
            p.to_bits(),
            gamma.to_bits(),
            depth as u64,
            forks as u64,
            max_fork_length as u64,
        ] {
            seed = splitmix(seed ^ splitmix(word));
        }
        EstimatorConfig {
            simulation: SimulationConfig {
                p,
                gamma,
                depth,
                forks_per_block: forks,
                max_fork_length,
                steps: self.steps,
                seed,
            },
            tolerance: self.tolerance,
            z_score: self.z_score,
            min_replicas: self.min_replicas,
            batch: self.batch,
            max_replicas: self.max_replicas,
            workers: self.workers,
        }
    }
}

/// SplitMix64 finalizer for all seed derivation in this crate (per-point and
/// per-replica streams share one mixer by design).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Certifies one solved grid point: exports the ε-optimal strategy into the
/// simulator and estimates its revenue under every configured arrival
/// source.
///
/// The export handle only reads the family's *structure*, so one handle —
/// built via [`StrategyExport::from_family`] (no instantiation at all) or
/// [`StrategyExport::new`] over any `(p, γ)` instantiation — serves every
/// point of its `(d, f, l)` family; the simulation parameters come from
/// `solve` itself.
///
/// # Errors
///
/// Propagates export errors ([`SelfishMiningError::InvalidParameter`] for a
/// strategy/model mismatch) and estimator configuration errors.
pub fn certify_point(
    export: &StrategyExport<'_>,
    solve: &CertifiedSolve,
    settings: &ConformanceSettings,
) -> Result<ConformancePoint, ConformanceError> {
    if settings.sources.is_empty() {
        return Err(ConformanceError::InvalidConfig {
            name: "sources",
            constraint: "must name at least one arrival source",
        });
    }
    // Unknown views wait (and are counted in the report) rather than panic:
    // a replica is allowed to wander where the MDP prunes, and the report
    // surfaces how often that happened.
    let table = export.table(&solve.strategy, UnknownViewPolicy::Wait)?;
    let table_entries = table.len();
    let config = settings.estimator_config(
        solve.p,
        solve.gamma,
        export.depth(),
        export.forks_per_block(),
        export.max_fork_length(),
    );
    let estimates = settings
        .sources
        .iter()
        .map(|&kind| estimate_revenue(&config, &table, kind))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConformancePoint {
        depth: export.depth(),
        forks: export.forks_per_block(),
        max_fork_length: export.max_fork_length(),
        p: solve.p,
        gamma: solve.gamma,
        certified_lower: solve.beta_low,
        certified_upper: solve.beta_up,
        slack: settings.certificate_slack,
        strategy_revenue: solve.strategy_revenue,
        table_entries,
        estimates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfish_mining::experiments::attack_curve_certified;
    use selfish_mining::ParametricModel;

    #[test]
    fn certify_point_witnesses_a_small_solve() {
        let family = ParametricModel::build(2, 1, 4).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.3], 5e-3, true).unwrap();
        let settings = ConformanceSettings {
            steps: 30_000,
            max_replicas: 24,
            ..ConformanceSettings::default()
        };
        let point =
            certify_point(&StrategyExport::from_family(&family), &solves[0], &settings).unwrap();
        assert_eq!(point.estimates.len(), 2);
        assert_eq!(point.depth, 2);
        assert!(point.table_entries > 0);
        assert!(
            point.conforms(),
            "CI should overlap the certificate: {point:?}"
        );
        assert!(point.sources_agree(), "sources disagree: {point:?}");
    }

    #[test]
    fn per_point_seeds_differ() {
        let settings = ConformanceSettings::default();
        let a = settings.estimator_config(0.1, 0.5, 2, 1, 4);
        let b = settings.estimator_config(0.2, 0.5, 2, 1, 4);
        let c = settings.estimator_config(0.1, 0.0, 2, 1, 4);
        assert_ne!(a.simulation.seed, b.simulation.seed);
        assert_ne!(a.simulation.seed, c.simulation.seed);
        // Same coordinates → same seed (reproducibility).
        let again = settings.estimator_config(0.1, 0.5, 2, 1, 4);
        assert_eq!(a.simulation.seed, again.simulation.seed);
    }

    #[test]
    fn empty_source_list_is_rejected() {
        let family = ParametricModel::build(1, 1, 2).unwrap();
        let solves = attack_curve_certified(&family, 0.5, &[0.2], 1e-2, true).unwrap();
        let settings = ConformanceSettings {
            sources: vec![],
            ..ConformanceSettings::default()
        };
        assert!(matches!(
            certify_point(&StrategyExport::from_family(&family), &solves[0], &settings),
            Err(ConformanceError::InvalidConfig {
                name: "sources",
                ..
            })
        ));
    }
}
