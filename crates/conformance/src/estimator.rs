//! The batched parallel Monte-Carlo revenue estimator.
//!
//! Replicas are independent seeded [`Simulator`] runs; their relative
//! revenues stream into a Welford mean/variance accumulator that feeds a CLT
//! confidence interval. A sequential stopping rule runs batches of replicas
//! until the interval half-width drops below the tolerance or the replica
//! budget is exhausted. The replica fan-out reuses the `sm-sweep` worker-pool
//! pattern (a [`std::thread::scope`] pool draining an atomic index), and the
//! result is **bit-identical for any worker count**: replica `i`'s seeds are
//! a pure function of the master seed and `i`, and the accumulator always
//! folds the per-replica results in replica order.
//!
//! Replicas draw block arrivals from any [`ConsensusBackend`] realisation:
//! the ideal Bernoulli lottery or one of the proof-backed lotteries from
//! `sm-proofs` (hashcash, stake, space, space-time, VDF beacon).

use crate::ConformanceError;
use selfish_mining::SelfishMiningError;
use sm_chain::{AdversaryStrategy, ConsensusBackend, SimulationConfig, Simulator};

/// Configuration of the Monte-Carlo estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Per-replica simulation parameters. `simulation.seed` is the **master
    /// seed**: replica `i` derives its simulation and arrival-source seeds
    /// from it by deterministic mixing, so one config describes the entire
    /// replica family.
    pub simulation: SimulationConfig,
    /// Target half-width of the confidence interval: the sequential stopping
    /// rule ends the run once `z_score · σ̂ / √n ≤ tolerance`.
    pub tolerance: f64,
    /// Normal quantile scaling the interval (1.96 ≈ 95 %, 3.0 ≈ 99.7 %).
    pub z_score: f64,
    /// Replicas to run before the stopping rule is first consulted (at least
    /// 2 are always run — the variance estimate needs them).
    pub min_replicas: usize,
    /// Replicas per stopping-rule round. Batching keeps the stopping
    /// decision a function of replica *count* only, which the determinism
    /// guarantee relies on.
    pub batch: usize,
    /// Hard replica budget; the estimate is flagged unconverged when the
    /// budget is exhausted before the tolerance is met.
    pub max_replicas: usize,
    /// Worker threads; `0` uses [`std::thread::available_parallelism`]. The
    /// estimate is bit-identical for every choice.
    pub workers: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            simulation: SimulationConfig::default(),
            tolerance: 4e-3,
            z_score: 3.0,
            min_replicas: 4,
            batch: 4,
            max_replicas: 64,
            workers: 0,
        }
    }
}

impl EstimatorConfig {
    fn validate(&self) -> Result<(), ConformanceError> {
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(ConformanceError::InvalidConfig {
                name: "tolerance",
                constraint: "must be finite and positive",
            });
        }
        if !self.z_score.is_finite() || self.z_score <= 0.0 {
            return Err(ConformanceError::InvalidConfig {
                name: "z_score",
                constraint: "must be finite and positive",
            });
        }
        if self.batch == 0 {
            return Err(ConformanceError::InvalidConfig {
                name: "batch",
                constraint: "must be positive",
            });
        }
        if self.max_replicas < 2 {
            return Err(ConformanceError::InvalidConfig {
                name: "max_replicas",
                constraint: "must be at least 2 (the variance estimate needs two replicas)",
            });
        }
        // An inconsistent floor is a config error, not something to clamp
        // away silently: a caller asking for fewer than 2 replicas would get
        // a variance-less estimate, and a floor above the budget can never be
        // honoured.
        if self.min_replicas < 2 {
            return Err(ConformanceError::InvalidConfig {
                name: "min_replicas",
                constraint: "must be at least 2 (the variance estimate needs two replicas)",
            });
        }
        if self.min_replicas > self.max_replicas {
            return Err(ConformanceError::InvalidConfig {
                name: "min_replicas",
                constraint: "must not exceed max_replicas",
            });
        }
        // Reject an invalid resource share up front with a typed error; the
        // historical path let `Simulator::new` catch it with an assert.
        if sm_chain::validate_share("p", self.simulation.p).is_err() {
            return Err(ConformanceError::InvalidConfig {
                name: "simulation.p",
                constraint: "must lie in [0, 1]",
            });
        }
        Ok(())
    }

    /// The effective worker count for a round of `replicas` replicas.
    fn worker_count(&self, replicas: usize) -> usize {
        crate::effective_workers(self.workers, replicas)
    }
}

/// A Monte-Carlo estimate of the expected relative revenue with its CLT
/// confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// The consensus backend whose arrival realisation the replicas ran on.
    pub backend: ConsensusBackend,
    /// Sample mean of the per-replica relative revenues.
    pub mean: f64,
    /// Unbiased sample variance of the per-replica relative revenues.
    pub variance: f64,
    /// Half-width of the confidence interval, `z · σ̂ / √n`.
    pub half_width: f64,
    /// Number of replicas that contributed.
    pub replicas: usize,
    /// Simulated steps per replica.
    pub steps_per_replica: usize,
    /// Whether the stopping rule met the tolerance within the budget.
    pub converged: bool,
    /// Total decision points across all replicas for which the strategy had
    /// no explicit policy (0 for a table that covers everything the
    /// simulator reaches).
    pub unknown_views: u64,
}

impl Estimate {
    /// Lower end of the confidence interval.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper end of the confidence interval.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the confidence interval overlaps `[lower, upper]`.
    pub fn overlaps(&self, lower: f64, upper: f64) -> bool {
        self.lower() <= upper && lower <= self.upper()
    }

    /// Whether two estimates' confidence intervals overlap.
    pub fn agrees_with(&self, other: &Estimate) -> bool {
        self.overlaps(other.lower(), other.upper())
    }

    /// Distance between the confidence interval and `[lower, upper]`: 0 if
    /// and only if [`Estimate::overlaps`] holds, the positive separation
    /// otherwise, and `+∞` when either interval has a NaN endpoint (a
    /// non-finite estimate can never witness a certificate).
    ///
    /// The historical fold `(lower - upper()).max(lower() - upper).max(0.0)`
    /// silently absorbed NaN — [`f64::max`] returns the other operand when
    /// one side is NaN — so a NaN Monte-Carlo mean reported a gap of `0`
    /// while [`Estimate::overlaps`] was `false`, breaking the "0 iff
    /// conforms" contract of `ConformancePoint::worst_gap`.
    pub fn gap_to(&self, lower: f64, upper: f64) -> f64 {
        if self.overlaps(lower, upper) {
            return 0.0;
        }
        let gap = (lower - self.upper()).max(self.lower() - upper);
        // Non-overlapping finite intervals have a strictly positive gap; a
        // NaN endpoint (no overlap by IEEE comparison, NaN arithmetic here)
        // maps to +∞ so the verdict and the gap can never disagree.
        if gap.is_nan() {
            f64::INFINITY
        } else {
            gap
        }
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// CLT half-width `z · σ̂ / √n` of the accumulated sample — the one
    /// expression both the stopping rule and the final estimate use.
    fn half_width(&self, z_score: f64) -> f64 {
        z_score * (self.variance() / self.count as f64).sqrt()
    }
}

/// The two seeds of replica `index`: one for the simulation RNG, one for the
/// arrival source. Pure in `(master, index)`, which is what makes the
/// estimator deterministic for any worker count.
fn replica_seeds(master: u64, index: usize) -> (u64, u64) {
    let base = crate::splitmix(master ^ crate::splitmix(2 * index as u64));
    (
        base,
        crate::splitmix(master ^ crate::splitmix(2 * index as u64 + 1)),
    )
}

/// One replica's contribution: its relative revenue and the number of
/// unknown-view fallbacks its strategy hit.
fn run_replica<S>(
    config: &EstimatorConfig,
    strategy: &S,
    backend: ConsensusBackend,
    index: usize,
) -> Result<(f64, u64), ConformanceError>
where
    S: AdversaryStrategy + Clone,
{
    let (sim_seed, source_seed) = replica_seeds(config.simulation.seed, index);
    let simulator = Simulator::new(SimulationConfig {
        seed: sim_seed,
        ..config.simulation
    });
    let mut replica_strategy = strategy.clone();
    // The clone inherits the prototype's miss counter (e.g. from a prior run
    // of the same table); report only the misses this replica adds.
    let baseline_misses = replica_strategy.unknown_views();
    let mut source = backend
        .source(config.simulation.p, source_seed)
        .map_err(SelfishMiningError::from)?;
    let report = simulator.run_with_source(&mut replica_strategy, source.as_mut());
    Ok((
        report.relative_revenue(),
        replica_strategy.unknown_views() - baseline_misses,
    ))
}

/// Runs replicas `first..first + count` and returns their contributions in
/// replica order, fanning them over the shared scoped worker pool.
fn run_round<S>(
    config: &EstimatorConfig,
    strategy: &S,
    backend: ConsensusBackend,
    first: usize,
    count: usize,
) -> Vec<Result<(f64, u64), ConformanceError>>
where
    S: AdversaryStrategy + Clone + Send + Sync,
{
    crate::run_indexed_jobs(config.worker_count(count), count, |offset| {
        run_replica(config, strategy, backend, first + offset)
    })
}

/// Estimates the expected relative revenue of `strategy` under the given
/// backend's arrival realisation.
///
/// Replicas run in batches of [`EstimatorConfig::batch`]; after each batch
/// the CLT interval is recomputed and the run stops once its half-width
/// reaches [`EstimatorConfig::tolerance`] (sequential stopping rule) or
/// [`EstimatorConfig::max_replicas`] is exhausted. The returned estimate is
/// **bit-identical for any** [`EstimatorConfig::workers`] **count** given the
/// same master seed.
///
/// # Errors
///
/// Returns [`ConformanceError::InvalidConfig`] for non-finite or
/// non-positive tolerances and z-scores, an empty batch, a replica budget
/// below 2, a replica floor below 2 or above the budget, or an out-of-range
/// resource share. (The historical code silently clamped an inconsistent
/// `min_replicas` into range instead of rejecting the config.) Backend
/// construction errors (e.g. a zero-VDF space-time budget) propagate as
/// [`ConformanceError::Analysis`].
pub fn estimate_revenue<S>(
    config: &EstimatorConfig,
    strategy: &S,
    backend: ConsensusBackend,
) -> Result<Estimate, ConformanceError>
where
    S: AdversaryStrategy + Clone + Send + Sync,
{
    config.validate()?;
    let mut welford = Welford::default();
    let mut unknown_views = 0u64;
    let mut converged = false;
    let mut next_index = 0usize;
    while next_index < config.max_replicas {
        let round = config.batch.min(config.max_replicas - next_index);
        for result in run_round(config, strategy, backend, next_index, round) {
            let (revenue, misses) = result?;
            welford.push(revenue);
            unknown_views += misses;
        }
        next_index += round;
        if welford.count >= config.min_replicas
            && welford.half_width(config.z_score) <= config.tolerance
        {
            converged = true;
            break;
        }
    }
    Ok(Estimate {
        backend,
        mean: welford.mean,
        variance: welford.variance(),
        half_width: welford.half_width(config.z_score),
        replicas: welford.count,
        steps_per_replica: config.simulation.steps,
        converged,
        unknown_views,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_chain::HonestStrategy;

    fn config(p: f64, steps: usize, seed: u64) -> EstimatorConfig {
        EstimatorConfig {
            simulation: SimulationConfig {
                p,
                steps,
                seed,
                ..SimulationConfig::default()
            },
            ..EstimatorConfig::default()
        }
    }

    #[test]
    fn honest_estimate_converges_to_p() {
        let estimate = estimate_revenue(
            &config(0.3, 20_000, 1),
            &HonestStrategy,
            ConsensusBackend::Bernoulli,
        )
        .unwrap();
        assert!(estimate.replicas >= 4);
        assert!(estimate.half_width > 0.0);
        assert!(
            (estimate.mean - 0.3).abs() <= estimate.half_width + 5e-3,
            "mean {} vs 0.3 (hw {})",
            estimate.mean,
            estimate.half_width
        );
        assert_eq!(estimate.unknown_views, 0);
        assert_eq!(estimate.backend, ConsensusBackend::Bernoulli);
    }

    #[test]
    fn estimator_is_bit_identical_across_worker_counts() {
        let base = EstimatorConfig {
            // A tolerance no run meets forces the full budget, so every
            // worker count runs the same replicas.
            tolerance: 1e-12,
            max_replicas: 10,
            batch: 3,
            ..config(0.25, 5_000, 77)
        };
        let reference = estimate_revenue(
            &EstimatorConfig {
                workers: 1,
                ..base.clone()
            },
            &HonestStrategy,
            ConsensusBackend::PowLottery,
        )
        .unwrap();
        for workers in [2, 5, 8] {
            let estimate = estimate_revenue(
                &EstimatorConfig {
                    workers,
                    ..base.clone()
                },
                &HonestStrategy,
                ConsensusBackend::PowLottery,
            )
            .unwrap();
            assert_eq!(reference, estimate, "workers = {workers}");
        }
        assert!(!reference.converged);
        assert_eq!(reference.replicas, 10);
    }

    #[test]
    fn degenerate_resource_has_zero_variance_and_converges_immediately() {
        let estimate = estimate_revenue(
            &config(0.0, 2_000, 3),
            &HonestStrategy,
            ConsensusBackend::Bernoulli,
        )
        .unwrap();
        assert_eq!(estimate.mean, 0.0);
        assert_eq!(estimate.variance, 0.0);
        assert_eq!(estimate.half_width, 0.0);
        assert!(estimate.converged);
        assert_eq!(estimate.replicas, 4);
    }

    #[test]
    fn interval_helpers_are_consistent() {
        let estimate = Estimate {
            backend: ConsensusBackend::Bernoulli,
            mean: 0.3,
            variance: 1e-6,
            half_width: 0.01,
            replicas: 8,
            steps_per_replica: 1000,
            converged: true,
            unknown_views: 0,
        };
        assert!(estimate.overlaps(0.29, 0.295));
        assert!(estimate.overlaps(0.305, 0.4));
        assert!(!estimate.overlaps(0.32, 0.4));
        assert_eq!(estimate.gap_to(0.29, 0.295), 0.0);
        assert!((estimate.gap_to(0.35, 0.4) - 0.04).abs() < 1e-12);
        let other = Estimate {
            mean: 0.305,
            ..estimate.clone()
        };
        assert!(estimate.agrees_with(&other));
    }

    #[test]
    fn stale_prototype_miss_counters_are_not_double_counted() {
        use sm_chain::{AdversaryStrategy as _, AdversaryView, TableStrategy};
        let cfg = config(0.3, 2_000, 9);
        // An empty table misses (and counts) every decision point.
        let fresh = TableStrategy::new("empty");
        let clean = estimate_revenue(&cfg, &fresh, ConsensusBackend::Bernoulli).unwrap();
        assert!(clean.unknown_views > 0);
        // A prototype whose counter was dirtied before the run must report
        // the same per-replica misses, not the inherited baseline on top.
        let mut dirty = TableStrategy::new("empty");
        for _ in 0..7 {
            let _ = dirty.decide(&AdversaryView {
                fork_lengths: vec![vec![9]],
                owners: vec![],
                pending_honest_block: true,
                just_mined: false,
            });
        }
        let dirtied = estimate_revenue(&cfg, &dirty, ConsensusBackend::Bernoulli).unwrap();
        assert_eq!(clean, dirtied);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_tol = EstimatorConfig {
            tolerance: 0.0,
            ..config(0.3, 100, 1)
        };
        assert!(estimate_revenue(&bad_tol, &HonestStrategy, ConsensusBackend::Bernoulli).is_err());
        let bad_batch = EstimatorConfig {
            batch: 0,
            ..config(0.3, 100, 1)
        };
        assert!(
            estimate_revenue(&bad_batch, &HonestStrategy, ConsensusBackend::Bernoulli).is_err()
        );
        let bad_budget = EstimatorConfig {
            max_replicas: 1,
            ..config(0.3, 100, 1)
        };
        assert!(
            estimate_revenue(&bad_budget, &HonestStrategy, ConsensusBackend::Bernoulli).is_err()
        );
    }

    #[test]
    fn inconsistent_replica_floors_are_rejected_not_clamped() {
        // Regression: both configs used to be accepted by silently clamping
        // min_replicas via `.max(2).min(max_replicas)`.
        let too_low = EstimatorConfig {
            min_replicas: 1,
            ..config(0.3, 100, 1)
        };
        assert!(matches!(
            estimate_revenue(&too_low, &HonestStrategy, ConsensusBackend::Bernoulli),
            Err(ConformanceError::InvalidConfig {
                name: "min_replicas",
                ..
            })
        ));
        let above_budget = EstimatorConfig {
            min_replicas: 9,
            max_replicas: 8,
            ..config(0.3, 100, 1)
        };
        assert!(matches!(
            estimate_revenue(&above_budget, &HonestStrategy, ConsensusBackend::Bernoulli),
            Err(ConformanceError::InvalidConfig {
                name: "min_replicas",
                ..
            })
        ));
    }

    #[test]
    fn every_backend_estimates_the_honest_share() {
        // Proof-backed backends plug into the same estimator and land on the
        // proportional share for honest behaviour (the σ = 1 law is p for
        // every backend, including the budget-capped space-time miner).
        for backend in [
            ConsensusBackend::PoStake,
            ConsensusBackend::Vdf,
            ConsensusBackend::Post { vdfs: 1 },
        ] {
            let estimate =
                estimate_revenue(&config(0.3, 8_000, 5), &HonestStrategy, backend).unwrap();
            assert_eq!(estimate.backend, backend);
            assert!(
                (estimate.mean - 0.3).abs() <= estimate.half_width + 2e-2,
                "{backend}: mean {} (hw {})",
                estimate.mean,
                estimate.half_width
            );
        }
    }

    #[test]
    fn out_of_range_shares_are_config_errors_not_asserts() {
        // Regression direction: an invalid p used to reach Simulator::new's
        // assert; the estimator now rejects it with its own typed error.
        for bad in [-0.1, 1.5, f64::NAN] {
            assert!(matches!(
                estimate_revenue(
                    &config(bad, 100, 1),
                    &HonestStrategy,
                    ConsensusBackend::Bernoulli
                ),
                Err(ConformanceError::InvalidConfig {
                    name: "simulation.p",
                    ..
                })
            ));
        }
    }

    #[test]
    fn backend_construction_errors_propagate() {
        assert!(matches!(
            estimate_revenue(
                &config(0.3, 100, 1),
                &HonestStrategy,
                ConsensusBackend::Post { vdfs: 0 },
            ),
            Err(ConformanceError::Analysis(_))
        ));
    }

    #[test]
    fn non_finite_interval_parameters_are_rejected() {
        // Regression: an infinite z_score used to pass validation (only NaN
        // was caught) and produced an infinite, never-converging interval.
        for z_score in [f64::INFINITY, f64::NAN, 0.0, -1.0] {
            let bad = EstimatorConfig {
                z_score,
                ..config(0.3, 100, 1)
            };
            assert!(matches!(
                estimate_revenue(&bad, &HonestStrategy, ConsensusBackend::Bernoulli),
                Err(ConformanceError::InvalidConfig {
                    name: "z_score",
                    ..
                })
            ));
        }
        let bad_tol = EstimatorConfig {
            tolerance: f64::INFINITY,
            ..config(0.3, 100, 1)
        };
        assert!(matches!(
            estimate_revenue(&bad_tol, &HonestStrategy, ConsensusBackend::Bernoulli),
            Err(ConformanceError::InvalidConfig {
                name: "tolerance",
                ..
            })
        ));
    }
}
