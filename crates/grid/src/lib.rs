//! Fault-tolerant sharded orchestration of the conformance/certification
//! grid.
//!
//! The single-process pass ([`SweepConfig::run_conformance`]) certifies the
//! whole `(scenario, backend, d, f, γ, p)` grid in one go: one crash — an
//! OOM-killed CI runner, a pre-empted shared machine — and the entire run
//! restarts from zero. This crate cuts the same grid into **idempotent
//! point-jobs** with durable per-point artifacts, so a run resumes from
//! whatever its predecessor durably finished:
//!
//! * every grid point is serialized as one versioned `sm-grid/v1` JSON file
//!   ([`PointArtifact`], written via the dependency-free `sm_audit::json`
//!   machinery, floats round-tripping bit for bit), **content-addressed** by
//!   the point's canonical key — the grid-config digest plus the curve and
//!   `p` indices — and carrying an FNV-1a fingerprint of its own payload;
//! * a work-queue runner ([`run_grid`]) fans **shard jobs** (contiguous runs
//!   of one curve's missing points) over the workspace scheduler
//!   ([`sm_scheduler::run_budgeted_jobs`]) with bounded retry + exponential
//!   backoff ([`sm_scheduler::RetryPolicy`]) and an optional fault-injection
//!   hook ([`GridFaultPlan`]: kill/poison/delay selected jobs — for tests
//!   and CI smoke runs, never production);
//! * resume is the default: every run starts by scanning the artifact
//!   directory ([`scan_grid`]), verifying each file's fingerprint and
//!   coordinates, and scheduling **only** the missing or corrupt points;
//! * the merge folds completed artifacts in canonical point order into one
//!   [`ConformanceReport`] that is `f64::to_bits`-identical to the
//!   uninterrupted single-process report — for any worker count, shard
//!   size, crash/resume schedule or retry history.
//!
//! # Why sharded jobs can be bit-identical to the warm-started pass
//!
//! Within a curve, the single-process engine warm-starts consecutive `p`
//! points off each other, so a point's certificate depends on the curve's
//! `p`-prefix. A certificate is, however, a *pure function* of the family,
//! `γ`, the analysis config and the sequence of `advance`d points before it
//! — never of thread counts (see [`CurveTracker`]). A shard job therefore
//! opens a fresh tracker and replays the curve's canonical prefix
//! (`ps[0..=last_target]`) before emitting its assigned points: replaying
//! the prefix reproduces the warm chain's bits exactly, which is what makes
//! the jobs idempotent *and* mergeable byte for byte.
//!
//! ```
//! use sm_grid::{run_grid, GridOptions, GridSpec};
//! use sm_sweep::{ConformanceSettings, SweepConfig};
//!
//! let spec = GridSpec {
//!     sweep: SweepConfig {
//!         attack_grid: vec![(1, 1)],
//!         epsilon: 1e-2,
//!         ..SweepConfig::default()
//!     },
//!     gammas: vec![0.5],
//!     ps: vec![0.2],
//!     settings: ConformanceSettings {
//!         steps: 2_000,
//!         max_replicas: 4,
//!         tolerance: 5e-2,
//!         ..ConformanceSettings::default()
//!     },
//! };
//! let dir = std::env::temp_dir().join(format!("sm-grid-doc-{}", std::process::id()));
//! let first = run_grid(&spec, &GridOptions::new(&dir)).unwrap();
//! assert_eq!(first.report.len(), 1);
//! assert_eq!(first.produced, 1);
//! // Re-running over the same artifact directory is a no-op: every point is
//! // already durable, verified by fingerprint and merged as-is.
//! let resumed = run_grid(&spec, &GridOptions::new(&dir)).unwrap();
//! assert_eq!(resumed.produced, 0);
//! assert_eq!(resumed.reused, 1);
//! assert_eq!(first.report, resumed.report);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! [`SweepConfig::run_conformance`]: sm_sweep::SweepConfig::run_conformance
//! [`CurveTracker`]: selfish_mining::experiments::CurveTracker
//! [`ConformanceReport`]: sm_conformance::ConformanceReport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod fault;
mod runner;
mod spec;

pub use artifact::{artifact_file_name, PointArtifact, GRID_SCHEMA};
pub use fault::{FaultKind, GridFault, GridFaultPlan};
pub use runner::{merge_grid, run_grid, scan_grid, GridOptions, GridOutcome, GridScan, PointState};
pub use spec::{GridError, GridSpec, PointCoordinates};
