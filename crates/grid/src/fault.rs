//! Deterministic fault injection for the grid runner — the test harness
//! that proves the crash/resume story. A plan selects points by a
//! stride/offset pattern over the canonical point index and an attempt
//! budget, so a test (or a CI smoke run) can kill "every third job on its
//! first attempt" and assert the retry, rescan and merge machinery heals the
//! run bit for bit. Production runs simply carry no plan
//! ([`crate::GridOptions::fault_plan`] defaults to `None`).

use std::time::Duration;

/// What an injected fault does to a matching point-job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the shard attempt with [`crate::GridError::Injected`] *before*
    /// the point's artifact is written — a crash mid-shard: points the
    /// shard already wrote stay durable, later points never run.
    Kill,
    /// Write a deliberately truncated artifact and report success — a torn
    /// write surviving a power loss. The corruption is only discovered by
    /// the next scan's fingerprint verification, which re-schedules the
    /// point.
    Poison,
    /// Sleep before writing — a straggler. Results are unaffected; this
    /// exists to shake out ordering assumptions in schedules and tests.
    Delay(Duration),
}

/// One fault rule: apply [`GridFault::kind`] to every point whose canonical
/// index is ≡ `offset (mod stride)`, on attempts `0..attempts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridFault {
    /// The injected behaviour.
    pub kind: FaultKind,
    /// Stride of the point selector (`0` matches nothing).
    pub stride: usize,
    /// Offset of the point selector, taken `mod stride`.
    pub offset: usize,
    /// Number of attempts the fault fires on. Attempts are 0-based and
    /// matched against a *run-cumulative* clock: in-place retries and later
    /// scan/execute rounds both advance it, so `1` faults only the first
    /// try of a run (a retry or the next round heals it) and `usize::MAX`
    /// never heals within a run — only a later resume without the plan.
    pub attempts: usize,
}

impl GridFault {
    fn applies(&self, point: usize, attempt: usize) -> bool {
        self.stride >= 1
            && point % self.stride == self.offset % self.stride
            && attempt < self.attempts
    }
}

/// A set of fault rules, first match wins. Test-only by intent: the runner
/// honours a plan wherever one is supplied, but no production entry point
/// constructs one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridFaultPlan {
    /// The rules, checked in order.
    pub faults: Vec<GridFault>,
}

impl GridFaultPlan {
    /// Kills every `stride`-th point-job (offset 0) on its first `attempts`
    /// attempts.
    pub fn kill_every(stride: usize, attempts: usize) -> Self {
        GridFaultPlan {
            faults: vec![GridFault {
                kind: FaultKind::Kill,
                stride,
                offset: 0,
                attempts,
            }],
        }
    }

    /// Poisons every `stride`-th point's artifact (offset 0) on its first
    /// `attempts` attempts.
    pub fn poison_every(stride: usize, attempts: usize) -> Self {
        GridFaultPlan {
            faults: vec![GridFault {
                kind: FaultKind::Poison,
                stride,
                offset: 0,
                attempts,
            }],
        }
    }

    /// The first rule matching `(point, attempt)`, if any.
    pub fn fault_for(&self, point: usize, attempt: usize) -> Option<&GridFault> {
        self.faults
            .iter()
            .find(|fault| fault.applies(point, attempt))
    }

    /// Fraction of `points` whose *first* attempt is faulted — what the
    /// acceptance criterion "≥ 20 % of jobs killed or poisoned" is measured
    /// against.
    pub fn first_attempt_coverage(&self, points: usize) -> f64 {
        if points == 0 {
            return 0.0;
        }
        let faulted = (0..points)
            .filter(|&point| self.fault_for(point, 0).is_some())
            .count();
        faulted as f64 / points as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_offset_and_attempt_budget_select_points() {
        let plan = GridFaultPlan::kill_every(3, 1);
        assert!(plan.fault_for(0, 0).is_some());
        assert!(plan.fault_for(3, 0).is_some());
        assert!(plan.fault_for(1, 0).is_none());
        // Attempt budget: first attempt only.
        assert!(plan.fault_for(3, 1).is_none());
        // Stride 0 matches nothing (instead of dividing by zero).
        let inert = GridFaultPlan::kill_every(0, usize::MAX);
        assert!(inert.fault_for(0, 0).is_none());
    }

    #[test]
    fn first_match_wins_and_coverage_counts_first_attempts() {
        let plan = GridFaultPlan {
            faults: vec![
                GridFault {
                    kind: FaultKind::Poison,
                    stride: 2,
                    offset: 0,
                    attempts: 1,
                },
                GridFault {
                    kind: FaultKind::Kill,
                    stride: 1,
                    offset: 0,
                    attempts: 1,
                },
            ],
        };
        assert_eq!(
            plan.fault_for(4, 0).map(|f| &f.kind),
            Some(&FaultKind::Poison)
        );
        assert_eq!(
            plan.fault_for(5, 0).map(|f| &f.kind),
            Some(&FaultKind::Kill)
        );
        assert_eq!(plan.first_attempt_coverage(10), 1.0);
        assert_eq!(
            GridFaultPlan::kill_every(2, 1).first_attempt_coverage(10),
            0.5
        );
        assert_eq!(GridFaultPlan::default().first_attempt_coverage(10), 0.0);
    }
}
