//! The durable per-point artifact: one conformance grid point — certified
//! bracket, strategy revenue and the full Monte-Carlo estimate matrix — as
//! one versioned JSON document, fingerprinted so a resume scan can tell a
//! finished point from a torn or stale write without re-solving anything.
//!
//! Artifacts are **content-addressed**: the file name is an FNV-1a digest of
//! `(config digest, curve index, p index)`, so re-running a completed shard
//! re-derives the same name, finds the verified file and becomes a no-op —
//! and artifacts of a *different* grid spec are invisible to the scan (their
//! names never collide with this grid's).

use sm_audit::json::{parse_json, write_json, JsonValue};
use sm_audit::Fnv1a;
use sm_conformance::{ConformancePoint, Estimate};

use selfish_mining::ConsensusBackend;

/// Schema tag of the JSON encoding.
pub const GRID_SCHEMA: &str = "sm-grid/v1";

/// Canonical artifact file name of one grid point: `point-` + 16 hex digits
/// of an FNV-1a digest over the grid-config digest and the point's canonical
/// `(curve, p)` indices.
pub fn artifact_file_name(config: u64, curve: usize, p_index: usize) -> String {
    let mut hasher = Fnv1a::new();
    hasher.write_u64(config);
    hasher.write_u64(curve as u64);
    hasher.write_u64(p_index as u64);
    format!("point-{:016x}.json", hasher.finish())
}

/// One durable grid point: the canonical key (grid-config digest + curve and
/// `p` indices) and the full [`ConformancePoint`] payload. Serialized as one
/// `sm-grid/v1` JSON document whose floats round-trip bit for bit and whose
/// trailing `fingerprint` field digests the rest of the document — a
/// truncated, torn or bit-flipped file fails verification and is treated as
/// missing, never merged.
#[derive(Debug, Clone, PartialEq)]
pub struct PointArtifact {
    /// [`crate::GridSpec::digest`] of the grid this point belongs to.
    pub config: u64,
    /// Canonical curve index (`γ` outer × family inner).
    pub curve: usize,
    /// Index into the grid's `p` axis.
    pub p_index: usize,
    /// The certified and witnessed point itself.
    pub point: ConformancePoint,
}

impl PointArtifact {
    /// FNV-1a digest of the canonical payload serialization (the document
    /// *without* its `fingerprint` field).
    pub fn fingerprint(&self) -> u64 {
        let mut payload = String::new();
        write_json(&JsonValue::Object(self.fields()), &mut payload);
        let mut hasher = Fnv1a::new();
        hasher.write_bytes(payload.as_bytes());
        hasher.finish()
    }

    /// Serializes the artifact as one JSON document: the payload fields in
    /// canonical order, then the payload's [`PointArtifact::fingerprint`] as
    /// a 16-digit hex string (JSON numbers cannot carry 64 bits).
    pub fn to_json(&self) -> String {
        let mut fields = self.fields();
        fields.push((
            "fingerprint".to_string(),
            JsonValue::String(format!("{:016x}", self.fingerprint())),
        ));
        let mut out = String::new();
        write_json(&JsonValue::Object(fields), &mut out);
        out.push('\n');
        out
    }

    /// Parses and **verifies** an artifact: schema tag, field shapes, a
    /// round-trippable backend label per estimate, and finally the
    /// fingerprint — the parsed content is re-serialized canonically and
    /// its digest must equal the stored one.
    ///
    /// # Errors
    ///
    /// A description of the first syntax, schema or fingerprint violation.
    pub fn from_json(input: &str) -> Result<PointArtifact, String> {
        let root = parse_json(input)?;
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("artifact is missing the \"schema\" field")?;
        if schema != GRID_SCHEMA {
            return Err(format!(
                "unsupported artifact schema {schema:?} (expected {GRID_SCHEMA:?})"
            ));
        }
        let hex_field = |key: &str| {
            let hex = root
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("artifact is missing hex string {key:?}"))?;
            u64::from_str_radix(hex, 16).map_err(|_| format!("malformed {key} {hex:?}"))
        };
        let usize_field = |value: &JsonValue, key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("artifact is missing integer {key:?}"))
        };
        let f64_field = |value: &JsonValue, key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("artifact is missing number {key:?}"))
        };
        let estimates = match root.get("estimates") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|item| {
                    let label = item
                        .get("backend")
                        .and_then(JsonValue::as_str)
                        .ok_or("estimate is missing string \"backend\"")?;
                    let backend = ConsensusBackend::from_label(label)
                        .ok_or_else(|| format!("unknown backend label {label:?}"))?;
                    let converged = match item.get("converged") {
                        Some(&JsonValue::Bool(converged)) => converged,
                        _ => return Err("estimate is missing bool \"converged\"".to_string()),
                    };
                    let unknown_views = f64_field(item, "unknown_views")?;
                    if !(unknown_views >= 0.0
                        && unknown_views.fract() == 0.0
                        && unknown_views <= 9.0e15)
                    {
                        return Err(format!("unknown_views {unknown_views} is not a u64"));
                    }
                    Ok(Estimate {
                        backend,
                        mean: f64_field(item, "mean")?,
                        variance: f64_field(item, "variance")?,
                        half_width: f64_field(item, "half_width")?,
                        replicas: usize_field(item, "replicas")?,
                        steps_per_replica: usize_field(item, "steps_per_replica")?,
                        converged,
                        unknown_views: unknown_views as u64,
                    })
                })
                .collect::<Result<Vec<Estimate>, String>>()?,
            _ => return Err("artifact is missing the \"estimates\" array".to_string()),
        };
        let scenario = root
            .get("scenario")
            .and_then(JsonValue::as_str)
            .ok_or("artifact is missing string \"scenario\"")?
            .to_string();
        let artifact = PointArtifact {
            config: hex_field("config")?,
            curve: usize_field(&root, "curve")?,
            p_index: usize_field(&root, "p_index")?,
            point: ConformancePoint {
                scenario,
                depth: usize_field(&root, "depth")?,
                forks: usize_field(&root, "forks")?,
                max_fork_length: usize_field(&root, "max_fork_length")?,
                p: f64_field(&root, "p")?,
                gamma: f64_field(&root, "gamma")?,
                certified_lower: f64_field(&root, "certified_lower")?,
                certified_upper: f64_field(&root, "certified_upper")?,
                slack: f64_field(&root, "slack")?,
                strategy_revenue: f64_field(&root, "strategy_revenue")?,
                table_entries: usize_field(&root, "table_entries")?,
                estimates,
            },
        };
        let stored = hex_field("fingerprint")?;
        let recomputed = artifact.fingerprint();
        if stored != recomputed {
            return Err(format!(
                "fingerprint mismatch: stored {stored:016x}, payload digests to {recomputed:016x}"
            ));
        }
        Ok(artifact)
    }

    /// The payload fields in canonical order (everything but the trailing
    /// fingerprint) — the domain of [`PointArtifact::fingerprint`].
    fn fields(&self) -> Vec<(String, JsonValue)> {
        let num = JsonValue::Number;
        let point = &self.point;
        let mut fields = vec![
            (
                "schema".to_string(),
                JsonValue::String(GRID_SCHEMA.to_string()),
            ),
            (
                "config".to_string(),
                JsonValue::String(format!("{:016x}", self.config)),
            ),
            ("curve".to_string(), num(self.curve as f64)),
            ("p_index".to_string(), num(self.p_index as f64)),
            (
                "scenario".to_string(),
                JsonValue::String(point.scenario.clone()),
            ),
            ("depth".to_string(), num(point.depth as f64)),
            ("forks".to_string(), num(point.forks as f64)),
            (
                "max_fork_length".to_string(),
                num(point.max_fork_length as f64),
            ),
            ("p".to_string(), num(point.p)),
            ("gamma".to_string(), num(point.gamma)),
            ("certified_lower".to_string(), num(point.certified_lower)),
            ("certified_upper".to_string(), num(point.certified_upper)),
            ("slack".to_string(), num(point.slack)),
            ("strategy_revenue".to_string(), num(point.strategy_revenue)),
            ("table_entries".to_string(), num(point.table_entries as f64)),
        ];
        let estimates = point
            .estimates
            .iter()
            .map(|estimate| {
                JsonValue::Object(vec![
                    (
                        "backend".to_string(),
                        JsonValue::String(estimate.backend.label()),
                    ),
                    ("mean".to_string(), num(estimate.mean)),
                    ("variance".to_string(), num(estimate.variance)),
                    ("half_width".to_string(), num(estimate.half_width)),
                    ("replicas".to_string(), num(estimate.replicas as f64)),
                    (
                        "steps_per_replica".to_string(),
                        num(estimate.steps_per_replica as f64),
                    ),
                    ("converged".to_string(), JsonValue::Bool(estimate.converged)),
                    (
                        "unknown_views".to_string(),
                        num(estimate.unknown_views as f64),
                    ),
                ])
            })
            .collect();
        fields.push(("estimates".to_string(), JsonValue::Array(estimates)));
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointArtifact {
        PointArtifact {
            config: 0x1234_5678_9abc_def0,
            curve: 3,
            p_index: 1,
            point: ConformancePoint {
                scenario: "optimal".to_string(),
                depth: 2,
                forks: 1,
                max_fork_length: 4,
                p: 0.2,
                gamma: 0.5,
                certified_lower: 0.2071,
                certified_upper: 0.2081,
                slack: 2.001e-3,
                strategy_revenue: 0.2071,
                table_entries: 137,
                estimates: vec![
                    Estimate {
                        backend: ConsensusBackend::Bernoulli,
                        mean: 0.2073,
                        variance: 1.9e-6,
                        half_width: 1.2e-3,
                        replicas: 12,
                        steps_per_replica: 60_000,
                        converged: true,
                        unknown_views: 0,
                    },
                    Estimate {
                        backend: ConsensusBackend::Post { vdfs: 3 },
                        mean: 0.2069,
                        variance: 2.2e-6,
                        half_width: 1.4e-3,
                        replicas: 16,
                        steps_per_replica: 60_000,
                        converged: false,
                        unknown_views: 5,
                    },
                ],
            },
        }
    }

    #[test]
    fn artifacts_round_trip_bit_for_bit() {
        let artifact = sample();
        let back = PointArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
        assert_eq!(back.point.p.to_bits(), artifact.point.p.to_bits());
        assert_eq!(
            back.point.estimates[1].mean.to_bits(),
            artifact.point.estimates[1].mean.to_bits()
        );
        assert_eq!(
            back.point.estimates[1].backend,
            artifact.point.estimates[1].backend
        );
    }

    #[test]
    fn truncation_and_bit_flips_fail_verification() {
        let json = sample().to_json();
        // Truncation breaks the parse.
        assert!(PointArtifact::from_json(&json[..json.len() / 2]).is_err());
        // A value flip keeps the parse but breaks the fingerprint.
        let flipped = json.replace("0.2071", "0.2072");
        assert_ne!(json, flipped, "the flip must hit");
        let err = PointArtifact::from_json(&flipped).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        // A flipped stored fingerprint is caught the same way.
        let restamped = json.replace(
            &format!("{:016x}", sample().fingerprint()),
            "0000000000000000",
        );
        assert!(PointArtifact::from_json(&restamped).is_err());
    }

    #[test]
    fn schema_and_backend_labels_are_enforced() {
        assert!(PointArtifact::from_json("{}").is_err());
        let wrong_schema = sample().to_json().replace(GRID_SCHEMA, "sm-grid/v0");
        assert!(PointArtifact::from_json(&wrong_schema).is_err());
        let unknown_backend = sample().to_json().replace("bernoulli", "quantum");
        assert!(PointArtifact::from_json(&unknown_backend).is_err());
    }

    #[test]
    fn file_names_are_stable_and_key_sensitive() {
        let name = artifact_file_name(7, 2, 4);
        assert_eq!(name, artifact_file_name(7, 2, 4));
        assert_ne!(name, artifact_file_name(7, 2, 5));
        assert_ne!(name, artifact_file_name(7, 3, 4));
        assert_ne!(name, artifact_file_name(8, 2, 4));
        assert!(name.starts_with("point-") && name.ends_with(".json"));
    }
}
