//! The grid specification: everything that *defines* the conformance grid —
//! sweep config, `γ`/`p` grids and estimator settings — plus the canonical
//! point enumeration and the config digest that content-addresses its
//! artifacts.

use selfish_mining::{AttackScenario, SelfishMiningError};
use sm_audit::Fnv1a;
use sm_conformance::{ConformanceError, ConformanceSettings};
use sm_sweep::SweepConfig;
use std::error::Error;
use std::fmt;

/// The full definition of one conformance/certification grid: the sweep
/// config (attack grid, scenarios, `l`, `ε`, warm starts), the `γ` and `p`
/// grids and the Monte-Carlo witness settings. Two specs with the same
/// [`GridSpec::digest`] define byte-identical grids, so their artifacts are
/// interchangeable; artifacts from any *other* digest are invisible to a
/// resume scan (the digest is part of every artifact's file name and
/// payload).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// The sweep configuration: attack grid, scenarios, `l`, `ε`,
    /// warm-start knob. Its `workers` field is ignored here —
    /// [`crate::GridOptions::workers`] owns the thread budget.
    pub sweep: SweepConfig,
    /// Switching probabilities `γ`, outermost grid axis (input order).
    pub gammas: Vec<f64>,
    /// Adversarial shares `p`, innermost grid axis (input order). Within a
    /// curve, points warm-start each other in this order — the order is
    /// part of the grid's identity, not a presentation choice.
    pub ps: Vec<f64>,
    /// Monte-Carlo witness settings, including the consensus-backend matrix.
    pub settings: ConformanceSettings,
}

/// Canonical coordinates of one grid point, recovered from its global
/// index: the report of [`sm_sweep::SweepConfig::run_conformance`] lists
/// points by `γ` (input order), then `(d, f)` (grid order), then scenario
/// (config order), then `p` (input order), and `sm-grid` enumerates them
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCoordinates {
    /// Index into [`GridSpec::gammas`].
    pub gamma_index: usize,
    /// Canonical family index: `(d, f)` outer × scenario inner.
    pub family_index: usize,
    /// Index into [`GridSpec::ps`].
    pub p_index: usize,
    /// Canonical curve index, `gamma_index · families + family_index`.
    pub curve: usize,
    /// Switching probability of the point.
    pub gamma: f64,
    /// Adversarial share of the point.
    pub p: f64,
    /// Attack scenario of the point's family.
    pub scenario: AttackScenario,
    /// Attack depth `d` of the point's family.
    pub depth: usize,
    /// Forking number `f` of the point's family.
    pub forks: usize,
}

impl GridSpec {
    /// Number of `(d, f) × scenario` families, the canonical family axis.
    pub fn num_families(&self) -> usize {
        self.sweep.attack_grid.len() * self.sweep.scenarios.len()
    }

    /// Number of `(γ, family)` curves — the warm-start unit of work.
    pub fn num_curves(&self) -> usize {
        self.gammas.len() * self.num_families()
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.num_curves() * self.ps.len()
    }

    /// Recovers the canonical coordinates of global point `index`, or
    /// `None` when the index is out of range (or the `p` grid is empty).
    pub fn coordinates(&self, index: usize) -> Option<PointCoordinates> {
        let scenarios = self.sweep.scenarios.len();
        if self.ps.is_empty() || scenarios == 0 {
            return None;
        }
        let curve = index / self.ps.len();
        let p_index = index % self.ps.len();
        let families = self.num_families();
        if families == 0 || curve >= self.num_curves() {
            return None;
        }
        let gamma_index = curve / families;
        let family_index = curve % families;
        let &(depth, forks) = self.sweep.attack_grid.get(family_index / scenarios)?;
        let &scenario = self.sweep.scenarios.get(family_index % scenarios)?;
        Some(PointCoordinates {
            gamma_index,
            family_index,
            p_index,
            curve,
            gamma: *self.gammas.get(gamma_index)?,
            p: *self.ps.get(p_index)?,
            scenario,
            depth,
            forks,
        })
    }

    /// Rejects an invalid spec up front, with the *same* checks (and the
    /// same error values) as [`sm_sweep::SweepConfig::run_conformance`]:
    /// `ε` finite and positive, every `γ`/`p` in `[0, 1]`, at least one
    /// scenario and at least one consensus backend. Validating here keeps a
    /// dead-on-arrival spec from scattering half a grid of artifacts before
    /// the first real error surfaces.
    ///
    /// # Errors
    ///
    /// [`GridError::Conformance`] wrapping the pass's own rejection.
    pub fn validate(&self) -> Result<(), GridError> {
        self.sweep
            .validate_grid(&self.gammas, &self.ps)
            .map_err(ConformanceError::Analysis)?;
        if self.sweep.scenarios.is_empty() {
            return Err(GridError::Conformance(ConformanceError::InvalidConfig {
                name: "scenarios",
                constraint: "must name at least one attack scenario",
            }));
        }
        if self.settings.backends.is_empty() {
            return Err(GridError::Conformance(ConformanceError::InvalidConfig {
                name: "backends",
                constraint: "must name at least one consensus backend",
            }));
        }
        Ok(())
    }

    /// FNV-1a digest over every field that determines a point's certified
    /// bits: the attack grid, scenario labels, `l`, `ε`, the warm-start
    /// knob, both grid axes (values *and* order — the warm chain depends on
    /// the `p` prefix) and the full estimator settings including the
    /// backend matrix. Schedule-only knobs (`SweepConfig::workers`, the
    /// single-tree baseline fields, `ConformanceSettings::workers`) are
    /// excluded: they are invisible in the results by the workspace's
    /// determinism contract, and hashing them would needlessly orphan
    /// artifacts across pool shapes.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv1a::new();
        hasher.write_bytes(crate::GRID_SCHEMA.as_bytes());
        hash_usize(&mut hasher, self.sweep.attack_grid.len());
        for &(depth, forks) in &self.sweep.attack_grid {
            hash_usize(&mut hasher, depth);
            hash_usize(&mut hasher, forks);
        }
        hash_usize(&mut hasher, self.sweep.scenarios.len());
        for scenario in &self.sweep.scenarios {
            hash_str(&mut hasher, &scenario.label());
        }
        hash_usize(&mut hasher, self.sweep.max_fork_length);
        hasher.write_u64(self.sweep.epsilon.to_bits());
        hasher.write_u64(u64::from(self.sweep.warm_start));
        hash_f64s(&mut hasher, &self.gammas);
        hash_f64s(&mut hasher, &self.ps);
        hash_usize(&mut hasher, self.settings.steps);
        hasher.write_u64(self.settings.tolerance.to_bits());
        hasher.write_u64(self.settings.z_score.to_bits());
        hash_usize(&mut hasher, self.settings.min_replicas);
        hash_usize(&mut hasher, self.settings.batch);
        hash_usize(&mut hasher, self.settings.max_replicas);
        hasher.write_u64(self.settings.master_seed);
        hasher.write_u64(self.settings.certificate_slack.to_bits());
        hasher.write_u64(self.settings.statistical_slack.to_bits());
        hash_usize(&mut hasher, self.settings.backends.len());
        for backend in &self.settings.backends {
            hash_str(&mut hasher, &backend.label());
        }
        hasher.finish()
    }
}

fn hash_usize(hasher: &mut Fnv1a, value: usize) {
    hasher.write_u64(value as u64);
}

fn hash_str(hasher: &mut Fnv1a, value: &str) {
    hash_usize(hasher, value.len());
    hasher.write_bytes(value.as_bytes());
}

fn hash_f64s(hasher: &mut Fnv1a, values: &[f64]) {
    hash_usize(hasher, values.len());
    hasher.write_f64_slice(values);
}

/// Errors of the grid orchestrator.
#[derive(Debug)]
pub enum GridError {
    /// An orchestration option violates its constraint.
    InvalidOptions {
        /// Name of the offending option.
        name: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// The underlying solve or Monte-Carlo witness failed.
    Conformance(ConformanceError),
    /// A filesystem operation on the artifact directory failed.
    Io {
        /// The path the operation targeted.
        path: String,
        /// The OS error description.
        message: String,
    },
    /// The run ended with unfinished points: the retry/round budget was
    /// spent before every artifact became durable.
    Incomplete {
        /// Number of points still missing or corrupt.
        pending: usize,
        /// Description of the last shard failure, when one was recorded.
        last_error: Option<String>,
    },
    /// A [`crate::GridFaultPlan`] kill fault fired (test-only by
    /// construction: production runs carry no fault plan).
    Injected {
        /// Global index of the point whose job was killed.
        point: usize,
    },
    /// An internal invariant was violated — a bug in this crate, not in the
    /// caller's inputs.
    Internal {
        /// Description of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidOptions { name, constraint } => {
                write!(f, "grid option {name} violates constraint: {constraint}")
            }
            GridError::Conformance(err) => write!(f, "conformance error: {err}"),
            GridError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            GridError::Incomplete {
                pending,
                last_error,
            } => {
                write!(f, "grid run left {pending} point(s) unfinished")?;
                if let Some(last_error) = last_error {
                    write!(f, " (last failure: {last_error})")?;
                }
                Ok(())
            }
            GridError::Injected { point } => {
                write!(f, "injected fault killed the job for point #{point}")
            }
            GridError::Internal { what } => write!(f, "internal grid invariant violated: {what}"),
        }
    }
}

impl Error for GridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GridError::Conformance(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ConformanceError> for GridError {
    fn from(err: ConformanceError) -> Self {
        GridError::Conformance(err)
    }
}

impl From<SelfishMiningError> for GridError {
    fn from(err: SelfishMiningError) -> Self {
        GridError::Conformance(ConformanceError::Analysis(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfish_mining::ConsensusBackend;

    fn spec() -> GridSpec {
        GridSpec {
            sweep: SweepConfig {
                attack_grid: vec![(1, 1), (2, 1)],
                scenarios: vec![AttackScenario::Optimal, AttackScenario::HonestMining],
                ..SweepConfig::default()
            },
            gammas: vec![0.0, 0.5],
            ps: vec![0.1, 0.2, 0.3],
            settings: ConformanceSettings::default(),
        }
    }

    #[test]
    fn enumeration_matches_the_conformance_report_order() {
        let spec = spec();
        assert_eq!(spec.num_families(), 4);
        assert_eq!(spec.num_curves(), 8);
        assert_eq!(spec.num_points(), 24);
        // Point 0: first γ, first (d, f), first scenario, first p.
        let first = spec.coordinates(0).unwrap();
        assert_eq!(
            (first.gamma, first.depth, first.forks, first.p),
            (0.0, 1, 1, 0.1)
        );
        assert_eq!(first.scenario, AttackScenario::Optimal);
        // Scenario is the inner family axis: the next curve over flips it.
        let second_family = spec.coordinates(3).unwrap();
        assert_eq!(second_family.scenario, AttackScenario::HonestMining);
        assert_eq!((second_family.depth, second_family.forks), (1, 1));
        // Last point: last γ, last (d, f), last scenario, last p.
        let last = spec.coordinates(23).unwrap();
        assert_eq!(
            (last.gamma, last.depth, last.forks, last.p),
            (0.5, 2, 1, 0.3)
        );
        assert_eq!(last.scenario, AttackScenario::HonestMining);
        assert!(spec.coordinates(24).is_none());
    }

    #[test]
    fn digest_tracks_result_determining_fields_only() {
        let base = spec();
        let digest = base.digest();
        assert_eq!(digest, spec().digest(), "digest must be deterministic");

        // Schedule-only knobs do not orphan artifacts.
        let mut pooled = spec();
        pooled.sweep.workers = 7;
        pooled.settings.workers = 3;
        assert_eq!(digest, pooled.digest());

        // Result-determining fields do.
        let mut reordered = spec();
        reordered.ps.reverse();
        assert_ne!(digest, reordered.digest(), "p order feeds the warm chain");
        let mut reseeded = spec();
        reseeded.settings.master_seed ^= 1;
        assert_ne!(digest, reseeded.digest());
        let mut rebackended = spec();
        rebackended.settings.backends = vec![ConsensusBackend::Vdf];
        assert_ne!(digest, rebackended.digest());
        let mut cold = spec();
        cold.sweep.warm_start = false;
        assert_ne!(digest, cold.digest());
    }

    #[test]
    fn validation_rejects_bad_specs_with_conformance_errors() {
        let mut nan_p = spec();
        nan_p.ps.push(f64::NAN);
        assert!(matches!(
            nan_p.validate(),
            Err(GridError::Conformance(ConformanceError::Analysis(
                SelfishMiningError::InvalidParameter { name: "p", .. }
            )))
        ));
        let mut no_scenarios = spec();
        no_scenarios.sweep.scenarios.clear();
        assert!(matches!(
            no_scenarios.validate(),
            Err(GridError::Conformance(ConformanceError::InvalidConfig {
                name: "scenarios",
                ..
            }))
        ));
        let mut no_backends = spec();
        no_backends.settings.backends.clear();
        assert!(matches!(
            no_backends.validate(),
            Err(GridError::Conformance(ConformanceError::InvalidConfig {
                name: "backends",
                ..
            }))
        ));
        assert!(spec().validate().is_ok());
    }
}
