//! The orchestrator itself: scan → schedule → execute → merge.
//!
//! A run is a bounded loop of *rounds*. Every round scans the artifact
//! directory ([`scan_grid`]) — verifying each file's fingerprint and
//! coordinates — and schedules only the points that are still missing or
//! corrupt, grouped into per-curve **shards**. A shard job replays its
//! curve's canonical warm-start prefix and writes one durable artifact per
//! assigned point (tmp-file + rename, so a crash never leaves a half-written
//! file under the final name); failed shards are retried in place with
//! exponential backoff ([`sm_scheduler::run_with_retry`]). When a scan finds
//! every point durable, the artifacts are folded **in canonical point
//! order** into one [`ConformanceReport`] — byte-identical to the
//! uninterrupted single-process pass.

use crate::artifact::{artifact_file_name, PointArtifact};
use crate::fault::{FaultKind, GridFaultPlan};
use crate::spec::{GridError, GridSpec};
use selfish_mining::experiments::CurveTracker;
use selfish_mining::{AnalysisConfig, ParametricModel, SolverParallelism, StrategyExport};
use sm_conformance::{certify_point, ConformanceReport};
use sm_scheduler::{resolve_budget, run_budgeted_jobs, run_with_retry, RetryPolicy};
use std::path::{Path, PathBuf};

/// Orchestration knobs of one grid run — everything that shapes *how* the
/// grid is computed without ever affecting *what* it computes: the merged
/// report is bit-identical for any combination of these.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOptions {
    /// Artifact directory (created if absent). Pointing a run at the
    /// directory of a previous run *is* resume: durable points are reused,
    /// the rest are scheduled.
    pub dir: PathBuf,
    /// Global thread budget of the shard pool (outer shard jobs plus
    /// intra-solve threads, exactly like `SweepConfig::workers`); `0` uses
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Points per shard within one curve; `0` = the whole curve (one
    /// warm-start replay per curve, the cheapest schedule). Smaller shards
    /// bound the work lost to a mid-shard crash at the cost of replaying
    /// the curve prefix per shard.
    pub shard_points: usize,
    /// Bounded retry with exponential backoff for failed shard attempts.
    pub retry: RetryPolicy,
    /// Scan → execute rounds before the run gives up; ≥ 1. Retries heal a
    /// shard that *errors*; rounds heal damage retries cannot see, e.g. a
    /// torn write that only the next scan's fingerprint check exposes.
    pub max_rounds: usize,
    /// Deterministic fault injection (tests and CI smoke runs only);
    /// production runs leave this `None`.
    pub fault_plan: Option<GridFaultPlan>,
}

impl GridOptions {
    /// Defaults for `dir`: auto thread budget, whole-curve shards, the
    /// default retry policy (3 attempts, 25 ms backoff), 3 rounds, no
    /// faults.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        GridOptions {
            dir: dir.into(),
            workers: 0,
            shard_points: 0,
            retry: RetryPolicy::default(),
            max_rounds: 3,
            fault_plan: None,
        }
    }
}

/// Durability state of one grid point in an artifact directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointState {
    /// A verified artifact exists: parseable, fingerprint and coordinates
    /// check out.
    Complete,
    /// No artifact file exists under the point's canonical name.
    Missing,
    /// A file exists but fails verification (truncated, torn, bit-flipped,
    /// or carrying the wrong coordinates); it is re-scheduled, never merged.
    Corrupt,
}

/// Result of scanning an artifact directory against a [`GridSpec`]: one
/// [`PointState`] per canonical point, with the verified payloads retained
/// so a complete scan can merge without re-reading anything.
#[derive(Debug)]
pub struct GridScan {
    states: Vec<PointState>,
    points: Vec<Option<PointArtifact>>,
}

impl GridScan {
    /// Per-point durability states, in canonical point order.
    pub fn states(&self) -> &[PointState] {
        &self.states
    }

    /// Number of verified points.
    pub fn complete(&self) -> usize {
        self.count(PointState::Complete)
    }

    /// Number of points with no artifact.
    pub fn missing(&self) -> usize {
        self.count(PointState::Missing)
    }

    /// Number of points whose artifact failed verification.
    pub fn corrupt(&self) -> usize {
        self.count(PointState::Corrupt)
    }

    /// Whether every point is durable and verified.
    pub fn is_complete(&self) -> bool {
        self.states
            .iter()
            .all(|&state| state == PointState::Complete)
    }

    /// Canonical indices still needing work (missing or corrupt), ascending.
    pub fn pending(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|&(_, &state)| state != PointState::Complete)
            .map(|(index, _)| index)
            .collect()
    }

    /// Folds the verified artifacts into the canonical report.
    ///
    /// # Errors
    ///
    /// [`GridError::Incomplete`] when any point is missing or corrupt.
    pub fn into_report(self) -> Result<ConformanceReport, GridError> {
        let pending = self.pending().len();
        if pending > 0 {
            return Err(GridError::Incomplete {
                pending,
                last_error: None,
            });
        }
        let points = self
            .points
            .into_iter()
            .map(|artifact| {
                artifact
                    .map(|artifact| artifact.point)
                    .ok_or(GridError::Internal {
                        what: "complete scan lost a verified payload",
                    })
            })
            .collect::<Result<Vec<_>, GridError>>()?;
        Ok(ConformanceReport { points })
    }

    fn count(&self, state: PointState) -> usize {
        self.states.iter().filter(|&&s| s == state).count()
    }
}

/// Outcome of a completed [`run_grid`]: the merged report plus the run's
/// orchestration statistics. Only the statistics depend on the schedule —
/// the report never does.
#[derive(Debug)]
pub struct GridOutcome {
    /// The merged report, byte-identical to the single-process pass.
    pub report: ConformanceReport,
    /// Points that were already durable and verified before this run.
    pub reused: usize,
    /// Clean point artifacts written by this run (rewrites included).
    pub produced: usize,
    /// Failed shard attempts that were retried in place.
    pub retries: usize,
    /// Scan → execute rounds this run used (1 = nothing to heal twice).
    pub rounds: usize,
}

/// Scans `dir` against `spec`: for every canonical point, looks up the
/// content-addressed artifact file, parses it, verifies its fingerprint and
/// cross-checks its coordinates against the spec. Verification failures
/// mark the point [`PointState::Corrupt`] — they are diagnoses, not errors;
/// a scan itself only fails on a broken spec.
///
/// # Errors
///
/// [`GridError::Conformance`] when the spec itself is invalid.
pub fn scan_grid(spec: &GridSpec, dir: &Path) -> Result<GridScan, GridError> {
    spec.validate()?;
    let digest = spec.digest();
    let total = spec.num_points();
    let mut states = Vec::with_capacity(total);
    let mut points = Vec::with_capacity(total);
    for index in 0..total {
        let coordinates = spec.coordinates(index).ok_or(GridError::Internal {
            what: "point index fell outside its own grid",
        })?;
        let path = dir.join(artifact_file_name(
            digest,
            coordinates.curve,
            coordinates.p_index,
        ));
        let state = match std::fs::read_to_string(&path) {
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                (PointState::Missing, None)
            }
            // An unreadable file is indistinguishable from a torn one for
            // our purposes: re-schedule the point.
            Err(_) => (PointState::Corrupt, None),
            Ok(contents) => match PointArtifact::from_json(&contents) {
                Err(_) => (PointState::Corrupt, None),
                Ok(artifact) => {
                    let point = &artifact.point;
                    let matches = artifact.config == digest
                        && artifact.curve == coordinates.curve
                        && artifact.p_index == coordinates.p_index
                        && point.p.to_bits() == coordinates.p.to_bits()
                        && point.gamma.to_bits() == coordinates.gamma.to_bits()
                        && point.scenario == coordinates.scenario.label()
                        && point.depth == coordinates.depth
                        && point.forks == coordinates.forks
                        && point.max_fork_length == spec.sweep.max_fork_length
                        && point.estimates.len() == spec.settings.backends.len()
                        && point
                            .estimates
                            .iter()
                            .zip(&spec.settings.backends)
                            .all(|(estimate, &backend)| estimate.backend == backend);
                    if matches {
                        (PointState::Complete, Some(artifact))
                    } else {
                        (PointState::Corrupt, None)
                    }
                }
            },
        };
        states.push(state.0);
        points.push(state.1);
    }
    Ok(GridScan { states, points })
}

/// Merges a *complete* artifact directory into the canonical report without
/// running anything — the read-only counterpart of [`run_grid`] (e.g. for
/// inspecting a nightly's uploaded artifacts).
///
/// # Errors
///
/// [`GridError::Incomplete`] when any point is missing or corrupt, and scan
/// errors as in [`scan_grid`].
pub fn merge_grid(spec: &GridSpec, dir: &Path) -> Result<ConformanceReport, GridError> {
    scan_grid(spec, dir)?.into_report()
}

/// One unit of scheduled work: a contiguous run of missing points of one
/// curve, with the curve's warm-start prefix replayed up to the last target.
#[derive(Debug)]
struct Shard {
    curve: usize,
    /// Target `p` indices, ascending.
    targets: Vec<usize>,
}

/// Runs the grid to completion over `options.dir`: scan, schedule the
/// missing/corrupt points as per-curve shards with retry + backoff, rescan,
/// and merge once everything is durable — see the crate docs for the full
/// contract. Re-running over a completed directory is a verified no-op;
/// pointing at a dead run's directory resumes it.
///
/// # Errors
///
/// [`GridError::Incomplete`] when the retry/round budgets are spent with
/// points still missing; spec validation, I/O and solver errors as they
/// surface.
pub fn run_grid(spec: &GridSpec, options: &GridOptions) -> Result<GridOutcome, GridError> {
    spec.validate()?;
    if options.max_rounds == 0 {
        return Err(GridError::InvalidOptions {
            name: "max_rounds",
            constraint: "must allow at least one scan/execute round",
        });
    }
    std::fs::create_dir_all(&options.dir).map_err(|error| GridError::Io {
        path: options.dir.display().to_string(),
        message: error.to_string(),
    })?;
    let digest = spec.digest();
    let families = spec.sweep.build_scenario_families()?;
    let budget = resolve_budget(options.workers);

    let mut reused = None;
    let mut produced = 0;
    let mut retries = 0;
    let mut last_error: Option<String> = None;
    let mut rounds = 0;
    loop {
        let scan = scan_grid(spec, &options.dir)?;
        if reused.is_none() {
            reused = Some(scan.complete());
        }
        if scan.is_complete() {
            return Ok(GridOutcome {
                report: scan.into_report()?,
                reused: reused.unwrap_or(0),
                produced,
                retries,
                rounds: rounds.max(1),
            });
        }
        if rounds >= options.max_rounds {
            return Err(GridError::Incomplete {
                pending: scan.pending().len(),
                last_error,
            });
        }
        rounds += 1;
        // A corrupt file must not shadow the clean rewrite on filesystems
        // where rename-over-existing is not atomic; drop it first.
        for (index, &state) in scan.states().iter().enumerate() {
            if state != PointState::Corrupt {
                continue;
            }
            if let Some(coordinates) = spec.coordinates(index) {
                let path = options.dir.join(artifact_file_name(
                    digest,
                    coordinates.curve,
                    coordinates.p_index,
                ));
                std::fs::remove_file(&path).map_err(|error| GridError::Io {
                    path: path.display().to_string(),
                    message: error.to_string(),
                })?;
            }
        }
        let shards = plan_shards(spec, &scan.pending(), options.shard_points);
        let results = run_budgeted_jobs(budget, shards.len(), |index, allowance| {
            let shard = shards.get(index).ok_or(GridError::Internal {
                what: "shard index fell outside the schedule",
            })?;
            run_with_retry(&options.retry, |attempt| {
                // The fault clock is cumulative across rounds, so a fault
                // with `attempts: 1` fires once per *run* and a later round
                // heals it, rather than re-firing on every rescan.
                let fault_clock = (rounds - 1) * options.retry.max_attempts.max(1) + attempt;
                run_shard_attempt(
                    spec,
                    &families,
                    digest,
                    options,
                    shard,
                    fault_clock,
                    allowance,
                )
                .map(|written| (written, attempt))
            })
        });
        for outcome in results {
            match outcome {
                Ok((written, attempts_used)) => {
                    produced += written;
                    retries += attempts_used;
                }
                Err(error) => {
                    retries += options.retry.max_attempts.max(1) - 1;
                    last_error = Some(error.to_string());
                }
            }
        }
    }
}

/// Groups pending point indices into per-curve shards of at most
/// `shard_points` targets (`0` = unbounded, i.e. one shard per curve).
fn plan_shards(spec: &GridSpec, pending: &[usize], shard_points: usize) -> Vec<Shard> {
    let per_curve = spec.ps.len().max(1);
    let chunk = if shard_points == 0 {
        per_curve
    } else {
        shard_points
    };
    let mut shards: Vec<Shard> = Vec::new();
    for &index in pending {
        let curve = index / per_curve;
        let p_index = index % per_curve;
        let open = shards
            .last()
            .is_some_and(|shard| shard.curve == curve && shard.targets.len() < chunk);
        if open {
            if let Some(shard) = shards.last_mut() {
                shard.targets.push(p_index);
                continue;
            }
        }
        shards.push(Shard {
            curve,
            targets: vec![p_index],
        });
    }
    shards
}

/// One attempt at one shard: replay the curve's canonical warm-start prefix
/// (`p` indices `0..=last_target`), certify the assigned points and write
/// their artifacts durably (tmp + rename). Returns the number of clean
/// artifacts written. `fault_clock` is the run-cumulative attempt number
/// faults are matched against (in-place retries and later rounds both
/// advance it).
fn run_shard_attempt(
    spec: &GridSpec,
    families: &[ParametricModel],
    digest: u64,
    options: &GridOptions,
    shard: &Shard,
    fault_clock: usize,
    allowance: usize,
) -> Result<usize, GridError> {
    let num_families = spec.num_families().max(1);
    let family = families
        .get(shard.curve % num_families)
        .ok_or(GridError::Internal {
            what: "curve index names a family outside the spec",
        })?;
    let gamma = *spec
        .gammas
        .get(shard.curve / num_families)
        .ok_or(GridError::Internal {
            what: "curve index names a gamma outside the spec",
        })?;
    let last_target = *shard.targets.last().ok_or(GridError::Internal {
        what: "a shard must carry at least one target",
    })?;
    let config = AnalysisConfig::with_epsilon(spec.sweep.epsilon)
        .with_parallelism(SolverParallelism::threads(allowance));
    let mut tracker = CurveTracker::new(family, gamma, spec.sweep.warm_start, config);
    let export = StrategyExport::from_family(family);
    let mut written = 0;
    for p_index in 0..=last_target {
        let p = *spec.ps.get(p_index).ok_or(GridError::Internal {
            what: "shard target fell outside the p grid",
        })?;
        // Advancing through *every* prefix point — not just the targets —
        // is what reproduces the single-process warm chain bit for bit.
        let solve = tracker.advance(p)?;
        if shard.targets.binary_search(&p_index).is_err() {
            continue;
        }
        let global = shard.curve * spec.ps.len() + p_index;
        let name = artifact_file_name(digest, shard.curve, p_index);
        if let Some(fault) = options
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.fault_for(global, fault_clock))
        {
            match fault.kind {
                FaultKind::Kill => return Err(GridError::Injected { point: global }),
                FaultKind::Delay(delay) => std::thread::sleep(delay),
                FaultKind::Poison => {
                    let artifact = PointArtifact {
                        config: digest,
                        curve: shard.curve,
                        p_index,
                        point: certify_point(&export, &solve, &spec.settings)?,
                    };
                    let json = artifact.to_json();
                    let torn = json.get(..json.len() / 2).unwrap_or("{");
                    // Deliberately *not* the tmp+rename path: a torn write
                    // is exactly a raw partial write under the final name.
                    std::fs::write(options.dir.join(&name), torn).map_err(|error| {
                        GridError::Io {
                            path: name.clone(),
                            message: error.to_string(),
                        }
                    })?;
                    continue;
                }
            }
        }
        let artifact = PointArtifact {
            config: digest,
            curve: shard.curve,
            p_index,
            point: certify_point(&export, &solve, &spec.settings)?,
        };
        write_durably(&options.dir, &name, &artifact.to_json())?;
        written += 1;
    }
    Ok(written)
}

/// Writes `contents` to `dir/name` via a temp file + rename, so a crash in
/// the middle of the write can never leave a half-written file under the
/// final (content-addressed) name.
fn write_durably(dir: &Path, name: &str, contents: &str) -> Result<(), GridError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let path = dir.join(name);
    let io = |target: &Path| {
        let target = target.display().to_string();
        move |error: std::io::Error| GridError::Io {
            path: target.clone(),
            message: error.to_string(),
        }
    };
    std::fs::write(&tmp, contents).map_err(io(&tmp))?;
    std::fs::rename(&tmp, &path).map_err(io(&path))?;
    Ok(())
}
