//! A minimal, dependency-free stand-in for the [Criterion.rs] benchmarking
//! crate, so that the workspace's benches compile and run in offline
//! environments (this container has no access to crates.io).
//!
//! The shim implements the subset of the Criterion API the in-tree benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros — and
//! measures plain wall-clock time: one warm-up invocation followed by
//! `sample_size` timed samples, reporting min/median/mean per benchmark.
//! Swapping in the real Criterion later requires only a manifest change.
//!
//! [Criterion.rs]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, constructed by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        run_benchmark(&name, 20, f);
        self
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id that is just the rendering of a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group. A no-op in the shim; kept for API compatibility.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one sample: runs `routine` once and records its wall-clock time.
    ///
    /// The real Criterion runs the routine many times per sample and divides;
    /// the shim's per-sample granularity is sufficient for the millisecond-and-
    /// up routines benchmarked in this workspace.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        black_box(out);
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up invocation, not recorded.
    let mut bencher = Bencher { elapsed: None };
    f(&mut bencher);

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { elapsed: None };
        f(&mut bencher);
        // A closure that never calls `iter` contributes a zero sample, like
        // an empty Criterion bench would.
        samples.push(bencher.elapsed.unwrap_or_default());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "bench: {name:<48} median {} (mean {}, min {}, samples {})",
        human(median),
        human(mean),
        human(min),
        samples.len()
    );
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }

    #[test]
    fn human_durations_pick_sensible_units() {
        assert!(human(Duration::from_nanos(5)).ends_with("ns"));
        assert!(human(Duration::from_micros(5)).ends_with("us"));
        assert!(human(Duration::from_millis(5)).ends_with("ms"));
        assert!(human(Duration::from_secs(5)).ends_with('s'));
    }
}
