//! A minimal, dependency-free stand-in for the [Criterion.rs] benchmarking
//! crate, so that the workspace's benches compile and run in offline
//! environments (this container has no access to crates.io).
//!
//! The shim implements the subset of the Criterion API the in-tree benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros — and
//! measures plain wall-clock time: one warm-up invocation followed by
//! `sample_size` timed samples, reporting min/median/mean per benchmark.
//! Swapping in the real Criterion later requires only a manifest change.
//!
//! # Machine-readable reports
//!
//! Two environment variables feed the CI perf-regression harness:
//!
//! * `SM_BENCH_JSON=<path>` — after every benchmark, the accumulated
//!   results are (re)written to `<path>` as a JSON report (see
//!   [`json_report`] for the exact schema; `bench/README.md` documents it
//!   next to the committed baseline). The file is rewritten incrementally,
//!   so a partial report survives an aborted run. A *relative* path is
//!   resolved against the workspace root, not the process working
//!   directory — cargo runs each bench with the bench crate's directory as
//!   CWD, which used to scatter relative reports across crate dirs.
//! * `SM_BENCH_SAMPLES=<n>` — overrides every benchmark's sample count
//!   (whether set via [`BenchmarkGroup::sample_size`] or defaulted), so CI
//!   smoke runs can keep wall-clock time bounded without touching the
//!   bench sources.
//!
//! [Criterion.rs]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark, accumulated for the JSON report.
#[derive(Debug, Clone)]
struct RecordedBenchmark {
    name: String,
    median_ns: u128,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

/// Results recorded so far in this process (in execution order).
static RECORDED: Mutex<Vec<RecordedBenchmark>> = Mutex::new(Vec::new());

/// One recorded memory footprint, accumulated for the JSON report.
#[derive(Debug, Clone)]
struct RecordedMemory {
    name: String,
    bytes: u64,
}

/// Memory footprints recorded so far in this process (in execution order).
static RECORDED_MEMORY: Mutex<Vec<RecordedMemory>> = Mutex::new(Vec::new());

/// The schema identifier embedded in every JSON report.
pub const JSON_SCHEMA: &str = "sm-bench/v2";

/// Renders the benchmarks recorded so far as the `sm-bench/v2` JSON report:
///
/// ```json
/// {
///   "schema": "sm-bench/v2",
///   "benchmarks": [
///     {"name": "...", "median_ns": 0, "mean_ns": 0, "min_ns": 0, "samples": 0}
///   ],
///   "mem_footprint": [
///     {"name": "...", "bytes": 0}
///   ]
/// }
/// ```
///
/// Durations are integer nanoseconds; `name` is the full
/// `group/benchmark-id` path; `mem_footprint` carries resident-byte counts
/// recorded via [`record_memory`] (`v1` reports simply lack the array).
/// This is also what `SM_BENCH_JSON` writes.
pub fn json_report() -> String {
    let recorded = RECORDED.lock().expect("benchmark record poisoned");
    let memory = RECORDED_MEMORY.lock().expect("memory record poisoned");
    let mut out = String::from("{\n  \"schema\": \"");
    out.push_str(JSON_SCHEMA);
    out.push_str("\",\n  \"benchmarks\": [");
    for (index, bench) in recorded.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": \"");
        escape_into(&mut out, &bench.name);
        out.push_str(&format!(
            "\", \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}",
            bench.median_ns, bench.mean_ns, bench.min_ns, bench.samples
        ));
    }
    out.push_str("\n  ],\n  \"mem_footprint\": [");
    for (index, entry) in memory.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"name\": \"");
        escape_into(&mut out, &entry.name);
        out.push_str(&format!("\", \"bytes\": {}}}", entry.bytes));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// JSON-escapes `name` into `out`.
fn escape_into(out: &mut String, name: &str) {
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// The report file `SM_BENCH_JSON` points at, with relative paths resolved
/// against the workspace root (two levels above this crate's manifest) so
/// `SM_BENCH_JSON=report.json` lands in one predictable place no matter
/// which crate's bench process writes it.
fn report_path() -> Option<PathBuf> {
    let path = std::env::var("SM_BENCH_JSON").ok()?;
    if path.is_empty() {
        return None;
    }
    let path = PathBuf::from(path);
    if path.is_absolute() {
        Some(path)
    } else {
        let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).parent()?.parent()?;
        Some(workspace_root.join(path))
    }
}

/// Rewrites the `SM_BENCH_JSON` report file (if configured) with everything
/// recorded so far.
fn rewrite_report() {
    if let Some(path) = report_path() {
        if let Err(error) = std::fs::write(&path, json_report()) {
            eprintln!(
                "warning: could not write SM_BENCH_JSON={}: {error}",
                path.display()
            );
        }
    }
}

/// Records one benchmark result and, when `SM_BENCH_JSON` is set, rewrites
/// the report file with everything recorded so far.
fn record_benchmark(bench: RecordedBenchmark) {
    RECORDED
        .lock()
        .expect("benchmark record poisoned")
        .push(bench);
    rewrite_report();
}

/// Records a named resident-memory footprint (in bytes) into the report's
/// `mem_footprint` array and, when `SM_BENCH_JSON` is set, rewrites the
/// report file. Benches and examples use this to track arena sizes next to
/// their timings; the perf gate compares the entries against the committed
/// baseline like it compares durations.
pub fn record_memory(name: impl Into<String>, bytes: u64) {
    let name = name.into();
    println!("mem:   {name:<48} {bytes} bytes");
    RECORDED_MEMORY
        .lock()
        .expect("memory record poisoned")
        .push(RecordedMemory { name, bytes });
    rewrite_report();
}

/// The effective sample count: the benchmark's own configuration, unless
/// `SM_BENCH_SAMPLES` overrides it.
fn effective_sample_size(configured: usize) -> usize {
    std::env::var("SM_BENCH_SAMPLES")
        .ok()
        .and_then(|value| value.parse::<usize>().ok())
        .filter(|&samples| samples >= 1)
        .unwrap_or(configured)
}

/// Top-level benchmark driver, constructed by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        run_benchmark(&name, 20, f);
        self
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id that is just the rendering of a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group. A no-op in the shim; kept for API compatibility.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one sample: runs `routine` once and records its wall-clock time.
    ///
    /// The real Criterion runs the routine many times per sample and divides;
    /// the shim's per-sample granularity is sufficient for the millisecond-and-
    /// up routines benchmarked in this workspace.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = Some(start.elapsed());
        black_box(out);
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let sample_size = effective_sample_size(sample_size.max(1));
    // Warm-up invocation, not recorded.
    let mut bencher = Bencher { elapsed: None };
    f(&mut bencher);

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { elapsed: None };
        f(&mut bencher);
        // A closure that never calls `iter` contributes a zero sample, like
        // an empty Criterion bench would.
        samples.push(bencher.elapsed.unwrap_or_default());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "bench: {name:<48} median {} (mean {}, min {}, samples {})",
        human(median),
        human(mean),
        human(min),
        samples.len()
    );
    record_benchmark(RecordedBenchmark {
        name: name.to_string(),
        median_ns: median.as_nanos(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        samples: samples.len(),
    });
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_parameter() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }

    #[test]
    fn json_report_records_benchmarks_with_escaped_names() {
        let mut c = Criterion::default();
        c.bench_function("shim-json/\"quoted\"", |b| b.iter(|| 1 + 1));
        let report = json_report();
        assert!(report.starts_with("{\n  \"schema\": \"sm-bench/v2\""));
        assert!(report.contains("\"name\": \"shim-json/\\\"quoted\\\"\""));
        assert!(report.contains("\"median_ns\": "));
        assert!(report.contains("\"samples\": "));
        assert!(report.contains("\"mem_footprint\": ["));
        assert!(report.trim_end().ends_with('}'));
    }

    #[test]
    fn memory_footprints_land_in_the_report() {
        record_memory("shim-mem/arena", 12_345);
        let report = json_report();
        assert!(report.contains("{\"name\": \"shim-mem/arena\", \"bytes\": 12345}"));
    }

    #[test]
    fn relative_report_paths_resolve_against_the_workspace_root() {
        // The helper itself reads the env var, which is process-global, so
        // only exercise the path arithmetic here.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .unwrap();
        assert!(root.join("Cargo.toml").exists(), "{}", root.display());
    }

    #[test]
    fn sample_override_requires_a_positive_integer() {
        // Only sanity-checks the parser helper (the env var itself is
        // process-global, so tests must not set it).
        assert_eq!(effective_sample_size(7), 7);
    }

    #[test]
    fn human_durations_pick_sensible_units() {
        assert!(human(Duration::from_nanos(5)).ends_with("ns"));
        assert!(human(Duration::from_micros(5)).ends_with("us"));
        assert!(human(Duration::from_millis(5)).ends_with("ms"));
        assert!(human(Duration::from_secs(5)).ends_with('s'));
    }
}
