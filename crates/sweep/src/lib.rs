//! Parallel `(p, γ)` sweep engine for the selfish-mining analysis.
//!
//! The paper's Figure 2 evaluates a dense grid — 31 values of `p` × 5 values
//! of `γ` × 5 attack configurations — and the historical driver re-ran the
//! full breadth-first model construction for every single grid point. This
//! crate is the orchestration layer that exploits the parametric structure
//! instead:
//!
//! * per `(d, f)` configuration, **one** [`ParametricModel`] is built and
//!   shared (read-only) across the whole grid;
//! * the grid is cut into **curve jobs** — one `(d, f) × γ` attack curve or
//!   one `γ` baseline curve — and fanned out over a [`std::thread::scope`]
//!   worker pool; each worker owns **one instantiated arena** per job and
//!   refills it in place per `p` ([`ParametricModel::instantiate_into`]);
//! * within a curve, consecutive `p` points **warm-start** each other: the
//!   Dinkelbach iteration starts from the neighbouring point's certified
//!   `β_low`, and each inner relative-value-iteration solve is seeded with
//!   the bias vector of its predecessor
//!   ([`selfish_mining::AnalysisProcedure::solve_dinkelbach_warm`]).
//!
//! Curve jobs are deterministic and independent, so the result is identical
//! for any worker count — only wall-clock time changes. On a single core the
//! engine still wins by a large factor over the rebuild-per-point path
//! through arena reuse and warm starts alone; see `EXPERIMENTS.md` for
//! measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use selfish_mining::baselines::{honest_relative_revenue, SingleTreeAttack};
use selfish_mining::experiments::{attack_curve, Figure2Point};
use selfish_mining::{ParametricModel, SelfishMiningError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of a grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The `(d, f)` attack configurations to evaluate at every grid point.
    pub attack_grid: Vec<(usize, usize)>,
    /// Maximal private fork length `l`.
    pub max_fork_length: usize,
    /// Precision `ε` of the per-point analysis.
    pub epsilon: f64,
    /// Worker threads; `0` uses [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Whether consecutive `p` points of a curve warm-start each other
    /// (neighbouring `β_low` + bias carry-over). Disabling this keeps the
    /// arena reuse but solves every point cold; it exists as an ablation
    /// knob, not something a user should normally turn off.
    pub warm_start: bool,
    /// Single-tree baseline tree depth.
    pub single_tree_depth: usize,
    /// Single-tree baseline tree width.
    pub single_tree_width: usize,
}

impl Default for SweepConfig {
    /// Mirrors `Figure2Sweep::default()`: the affordable `(d, f)` prefix,
    /// `l = 4`, `ε = 10⁻³`, warm starts on, automatic worker count.
    fn default() -> Self {
        SweepConfig {
            attack_grid: vec![(1, 1), (2, 1), (2, 2)],
            max_fork_length: 4,
            epsilon: 1e-3,
            workers: 0,
            warm_start: true,
            single_tree_depth: 4,
            single_tree_width: 5,
        }
    }
}

/// One curve's worth of results (revenue per `p`), or the first error the
/// job hit.
type CurveResult = Result<Vec<f64>, SelfishMiningError>;

/// One unit of work for the pool: a whole curve, solved sequentially so its
/// points can warm-start each other.
enum CurveJob {
    /// Attack curve: configuration index into the grid × γ index.
    Attack { config: usize, gamma_index: usize },
    /// Baseline curve (single-tree attack) for one γ.
    Baseline { gamma_index: usize },
}

impl SweepConfig {
    /// Runs the sweep over `gammas × ps` and returns one [`Figure2Point`] per
    /// grid point, ordered by `γ` (outer, in input order) then `p` (inner, in
    /// input order) — the layout the Figure 2 renderers expect.
    ///
    /// The warm `β` seed is extrapolated through each curve's previous
    /// points; a misfitting seed (e.g. on a non-monotone `p` grid) merely
    /// costs extra inner iterations — over- and undershoots alike preserve
    /// the `ε` guarantee (see
    /// [`selfish_mining::DinkelbachWarmStart`]) — so any grid is *correct*,
    /// smooth ascending grids are merely fastest.
    ///
    /// # Errors
    ///
    /// Propagates the first model-construction or solver error any job hits.
    pub fn run(&self, gammas: &[f64], ps: &[f64]) -> Result<Vec<Figure2Point>, SelfishMiningError> {
        // Build each (d, f) family once, up front; jobs share them read-only.
        let families: Vec<Arc<ParametricModel>> = self
            .attack_grid
            .iter()
            .map(|&(depth, forks)| {
                ParametricModel::build(depth, forks, self.max_fork_length).map(Arc::new)
            })
            .collect::<Result<_, _>>()?;

        let mut jobs: Vec<CurveJob> = Vec::with_capacity((families.len() + 1) * gammas.len());
        for gamma_index in 0..gammas.len() {
            for config in 0..families.len() {
                jobs.push(CurveJob::Attack {
                    config,
                    gamma_index,
                });
            }
            jobs.push(CurveJob::Baseline { gamma_index });
        }

        let workers = self.worker_count(jobs.len());
        let next_job = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<CurveResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else {
                        break;
                    };
                    let outcome = self.run_job(job, &families, gammas, ps);
                    *results[index].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        // Assemble per-(γ, p) points from the per-curve result rows.
        let mut curves: Vec<Vec<f64>> = Vec::with_capacity(results.len());
        for slot in results {
            let outcome = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("worker pool completed every job");
            curves.push(outcome?);
        }
        let mut points = Vec::with_capacity(gammas.len() * ps.len());
        let rows_per_gamma = families.len() + 1;
        for (gamma_index, &gamma) in gammas.iter().enumerate() {
            let base = gamma_index * rows_per_gamma;
            let baseline = &curves[base + families.len()];
            for (i, &p) in ps.iter().enumerate() {
                points.push(Figure2Point {
                    p,
                    gamma,
                    attack_revenue: (0..families.len())
                        .map(|config| curves[base + config][i])
                        .collect(),
                    honest_revenue: honest_relative_revenue(p)?,
                    single_tree_revenue: baseline[i],
                });
            }
        }
        Ok(points)
    }

    /// Runs one curve job to completion on the calling worker thread.
    fn run_job(
        &self,
        job: &CurveJob,
        families: &[Arc<ParametricModel>],
        gammas: &[f64],
        ps: &[f64],
    ) -> CurveResult {
        match *job {
            CurveJob::Attack {
                config,
                gamma_index,
            } => attack_curve(
                &families[config],
                gammas[gamma_index],
                ps,
                self.epsilon,
                self.warm_start,
            ),
            CurveJob::Baseline { gamma_index } => ps
                .iter()
                .map(|&p| {
                    SingleTreeAttack {
                        p,
                        gamma: gammas[gamma_index],
                        max_depth: self.single_tree_depth,
                        max_width: self.single_tree_width,
                    }
                    .analyse()
                    .map(|result| result.relative_revenue)
                })
                .collect(),
        }
    }

    /// The effective worker count for a given number of jobs.
    fn worker_count(&self, jobs: usize) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        configured.clamp(1, jobs.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfish_mining::experiments::Figure2Sweep;

    fn small_config(workers: usize) -> SweepConfig {
        SweepConfig {
            attack_grid: vec![(1, 1), (2, 1)],
            epsilon: 5e-3,
            workers,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn engine_is_deterministic_across_worker_counts() {
        let gammas = [0.0, 0.5];
        let ps = [0.1, 0.2, 0.3];
        let one = small_config(1).run(&gammas, &ps).unwrap();
        let four = small_config(4).run(&gammas, &ps).unwrap();
        assert_eq!(one.len(), gammas.len() * ps.len());
        assert_eq!(one, four, "curve jobs are independent and deterministic");
    }

    #[test]
    fn engine_agrees_with_sequential_driver() {
        let config = small_config(2);
        let gammas = [0.5];
        let ps = [0.15, 0.3];
        let engine = config.run(&gammas, &ps).unwrap();
        let sweep = Figure2Sweep {
            attack_grid: config.attack_grid.clone(),
            epsilon: config.epsilon,
            ..Figure2Sweep::default()
        };
        let sequential = sweep.curve(0.5, &ps).unwrap();
        for (e, s) in engine.iter().zip(&sequential) {
            assert_eq!(e.p, s.p);
            assert_eq!(e.gamma, s.gamma);
            assert_eq!(e.honest_revenue, s.honest_revenue);
            assert_eq!(e.single_tree_revenue, s.single_tree_revenue);
            for (a, b) in e.attack_revenue.iter().zip(&s.attack_revenue) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "engine {a} vs sequential {b} at p = {}",
                    e.p
                );
            }
        }
    }

    #[test]
    fn warm_and_cold_sweeps_agree_within_epsilon() {
        let gammas = [0.25];
        let ps = [0.1, 0.2, 0.3];
        let warm = small_config(2).run(&gammas, &ps).unwrap();
        let cold = SweepConfig {
            warm_start: false,
            ..small_config(2)
        }
        .run(&gammas, &ps)
        .unwrap();
        for (w, c) in warm.iter().zip(&cold) {
            for (a, b) in w.attack_revenue.iter().zip(&c.attack_revenue) {
                assert!(
                    (a - b).abs() < 2.0 * 5e-3,
                    "warm {a} vs cold {b} at p = {}",
                    w.p
                );
            }
        }
    }

    #[test]
    fn masked_gamma_edges_run_through_the_engine() {
        // γ ∈ {0, 1} exercises the structurally-kept masked branches end to
        // end through instantiation, solving and baseline extraction.
        let points = small_config(2).run(&[0.0, 1.0], &[0.0, 0.3]).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            for &revenue in &point.attack_revenue {
                assert!((0.0..=1.0).contains(&revenue), "revenue {revenue}");
            }
            assert!(point.attack_revenue[1] >= point.honest_revenue - 5e-3);
        }
    }

    #[test]
    fn invalid_grid_surfaces_the_construction_error() {
        let config = SweepConfig {
            attack_grid: vec![(0, 1)],
            ..SweepConfig::default()
        };
        assert!(config.run(&[0.5], &[0.1]).is_err());
    }
}
