//! Parallel `(p, γ)` sweep engine for the selfish-mining analysis.
//!
//! The paper's Figure 2 evaluates a dense grid — 31 values of `p` × 5 values
//! of `γ` × 5 attack configurations — and the historical driver re-ran the
//! full breadth-first model construction for every single grid point. This
//! crate is the orchestration layer that exploits the parametric structure
//! instead:
//!
//! * per `(d, f)` configuration (and, in the conformance pass, per attack
//!   scenario), **one** [`ParametricModel`] is built and shared (read-only)
//!   across the whole grid;
//! * the grid is cut into **curve jobs** — one `(d, f) × γ` attack curve
//!   (`(scenario, d, f) × γ` in the conformance pass) or one `γ` baseline
//!   curve — and fanned out over a [`std::thread::scope`] worker pool; each
//!   worker owns **one instantiated arena** per job and refills it in place
//!   per `p` ([`ParametricModel::instantiate_into`]);
//! * within a curve, consecutive `p` points **warm-start** each other: the
//!   Dinkelbach iteration starts from the neighbouring point's certified
//!   `β_low`, and each inner relative-value-iteration solve is seeded with
//!   the bias vector of its predecessor
//!   ([`selfish_mining::AnalysisProcedure::solve_dinkelbach_warm`]).
//!
//! Curve jobs are deterministic and independent, so the result is identical
//! for any worker count — only wall-clock time changes. On a single core the
//! engine still wins by a large factor over the rebuild-per-point path
//! through arena reuse and warm starts alone; see `EXPERIMENTS.md` for
//! measured numbers.
//!
//! # Nested budgeting
//!
//! [`SweepConfig::workers`] is a **global thread budget**, shared between
//! the outer curve jobs and the *intra-solve* parallelism of the solvers
//! ([`selfish_mining::SolverParallelism`]): while the job queue is deep,
//! the budget goes to outer jobs (they parallelise with zero
//! synchronisation cost); as the queue drains below the budget — or when
//! there were fewer jobs than threads to begin with — the left-over
//! threads are granted to the running jobs, which forward them to the
//! row-block parallel Bellman and chain sweeps inside every solve
//! ([`sm_conformance::run_budgeted_jobs`]). The historical pool spawned
//! `min(workers, jobs)` threads and idled the rest on short queues. Every
//! solver is bit-identical for any thread count, so the schedule shape is
//! invisible in the results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use selfish_mining::baselines::{honest_relative_revenue, SingleTreeAttack};
use selfish_mining::experiments::{attack_curve_certified_with, attack_curve_with, Figure2Point};
use selfish_mining::{
    validate_epsilon, validate_share, AttackScenario, ParametricModel, SelfishMiningError,
    SolverParallelism, StrategyExport,
};
use sm_conformance::{certify_point, ConformanceError, ConformancePoint, ConformanceReport};
use sm_scheduler::{resolve_budget, run_budgeted_jobs};

pub use sm_conformance::ConformanceSettings;

/// Configuration of a grid sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The `(d, f)` attack configurations to evaluate at every grid point.
    pub attack_grid: Vec<(usize, usize)>,
    /// The attack scenarios the *conformance* pass certifies per `(d, f)`
    /// configuration ([`SweepConfig::run_conformance`] fans
    /// `(scenario, d, f) × γ` curve jobs over the pool). The revenue sweep
    /// [`SweepConfig::run`] regenerates the paper's Figure 2 and always
    /// evaluates the optimal scenario, ignoring this field.
    pub scenarios: Vec<AttackScenario>,
    /// Maximal private fork length `l`.
    pub max_fork_length: usize,
    /// Precision `ε` of the per-point analysis.
    pub epsilon: f64,
    /// Global thread budget shared by outer curve jobs and intra-solve
    /// parallelism (see the crate docs on nested budgeting); `0` uses
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Whether consecutive `p` points of a curve warm-start each other
    /// (neighbouring `β_low` + bias carry-over). Disabling this keeps the
    /// arena reuse but solves every point cold; it exists as an ablation
    /// knob, not something a user should normally turn off.
    pub warm_start: bool,
    /// Single-tree baseline tree depth.
    pub single_tree_depth: usize,
    /// Single-tree baseline tree width.
    pub single_tree_width: usize,
}

impl Default for SweepConfig {
    /// Mirrors `Figure2Sweep::default()`: the affordable `(d, f)` prefix,
    /// `l = 4`, `ε = 10⁻³`, warm starts on, automatic worker count.
    fn default() -> Self {
        SweepConfig {
            attack_grid: vec![(1, 1), (2, 1), (2, 2)],
            scenarios: vec![AttackScenario::Optimal],
            max_fork_length: 4,
            epsilon: 1e-3,
            workers: 0,
            warm_start: true,
            single_tree_depth: 4,
            single_tree_width: 5,
        }
    }
}

/// One curve's worth of results (revenue per `p`), or the first error the
/// job hit.
type CurveResult = Result<Vec<f64>, SelfishMiningError>;

/// One unit of work for the pool: a whole curve, solved sequentially so its
/// points can warm-start each other.
enum CurveJob {
    /// Attack curve: configuration index into the grid × γ index.
    Attack { config: usize, gamma_index: usize },
    /// Baseline curve (single-tree attack) for one γ.
    Baseline { gamma_index: usize },
}

impl SweepConfig {
    /// Runs the sweep over `gammas × ps` and returns one [`Figure2Point`] per
    /// grid point, ordered by `γ` (outer, in input order) then `p` (inner, in
    /// input order) — the layout the Figure 2 renderers expect.
    ///
    /// The warm `β` seed is extrapolated through each curve's previous
    /// points; a misfitting seed (e.g. on a non-monotone `p` grid) merely
    /// costs extra inner iterations — over- and undershoots alike preserve
    /// the `ε` guarantee (see
    /// [`selfish_mining::DinkelbachWarmStart`]) — so any grid is *correct*,
    /// smooth ascending grids are merely fastest.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive `ε` and any `p`/`γ` grid value
    /// outside `[0, 1]` (or `NaN`) up front with
    /// [`SelfishMiningError::InvalidParameter`], before any model is built;
    /// then propagates the first model-construction or solver error any job
    /// hits.
    pub fn run(&self, gammas: &[f64], ps: &[f64]) -> Result<Vec<Figure2Point>, SelfishMiningError> {
        self.validate_grid(gammas, ps)?;
        // Build each (d, f) family once, up front; jobs share them read-only.
        let families = self.build_families()?;

        let mut jobs: Vec<CurveJob> = Vec::with_capacity((families.len() + 1) * gammas.len());
        for gamma_index in 0..gammas.len() {
            for config in 0..families.len() {
                jobs.push(CurveJob::Attack {
                    config,
                    gamma_index,
                });
            }
            jobs.push(CurveJob::Baseline { gamma_index });
        }

        let budget = resolve_budget(self.workers);
        let results: Vec<CurveResult> =
            run_budgeted_jobs(budget, jobs.len(), |index, allowance| {
                self.run_job(
                    &jobs[index],
                    &families,
                    gammas,
                    ps,
                    SolverParallelism::threads(allowance),
                )
            });

        // Assemble per-(γ, p) points from the per-curve result rows.
        let mut curves: Vec<Vec<f64>> = Vec::with_capacity(results.len());
        for outcome in results {
            curves.push(outcome?);
        }
        let mut points = Vec::with_capacity(gammas.len() * ps.len());
        let rows_per_gamma = families.len() + 1;
        for (gamma_index, &gamma) in gammas.iter().enumerate() {
            let base = gamma_index * rows_per_gamma;
            let baseline = &curves[base + families.len()];
            for (i, &p) in ps.iter().enumerate() {
                points.push(Figure2Point {
                    p,
                    gamma,
                    attack_revenue: (0..families.len())
                        .map(|config| curves[base + config][i])
                        .collect(),
                    honest_revenue: honest_relative_revenue(p)?,
                    single_tree_revenue: baseline[i],
                });
            }
        }
        Ok(points)
    }

    /// Runs the optional statistical-conformance pass over the grid: every
    /// `(scenario, d, f) × γ` attack curve is solved with full certificates
    /// ([`selfish_mining::experiments::attack_curve_certified`], same arenas
    /// and warm starts as
    /// [`SweepConfig::run`]) on the scenario's own sub-arena, each point's
    /// ε-optimal strategy is exported into the simulator, and a batched
    /// Monte-Carlo estimate per configured consensus backend
    /// (`settings.backends`) is compared against the certified
    /// `[β_low, β_up]` revenue bracket.
    ///
    /// Curve jobs fan out over the same worker pool as the revenue sweep and
    /// the Monte-Carlo replica seeds are pure functions of
    /// `settings.master_seed`, the point coordinates and the scenario and
    /// backend salts, so the report is deterministic for any worker count —
    /// of this pool *and* of the estimator's. Points are ordered by `γ` (input order),
    /// then `(d, f)` (grid order), then scenario
    /// ([`SweepConfig::scenarios`] order), then `p` (input order).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive `ε` and any `p`/`γ` grid value
    /// outside `[0, 1]` (or `NaN`) up front — wrapped in
    /// [`ConformanceError::Analysis`] — before any model is built; then
    /// propagates the first model-construction, solver or estimator error
    /// any job hits, and rejects an empty scenario list.
    pub fn run_conformance(
        &self,
        gammas: &[f64],
        ps: &[f64],
        settings: &ConformanceSettings,
    ) -> Result<ConformanceReport, ConformanceError> {
        self.validate_grid(gammas, ps)?;
        if self.scenarios.is_empty() {
            return Err(ConformanceError::InvalidConfig {
                name: "scenarios",
                constraint: "must name at least one attack scenario",
            });
        }
        let families = self.build_scenario_families()?;

        // One job per (γ, config, scenario) attack curve, in output order.
        let jobs: Vec<(usize, usize)> = (0..gammas.len())
            .flat_map(|gamma_index| (0..families.len()).map(move |family| (gamma_index, family)))
            .collect();
        let budget = resolve_budget(self.workers);
        let results = run_budgeted_jobs(budget, jobs.len(), |index, allowance| {
            let (gamma_index, family) = jobs[index];
            self.certify_curve(
                &families[family],
                gammas[gamma_index],
                ps,
                settings,
                SolverParallelism::threads(allowance),
            )
        });

        let mut points = Vec::with_capacity(jobs.len() * ps.len());
        for outcome in results {
            points.extend(outcome?);
        }
        Ok(ConformanceReport { points })
    }

    /// Validates the sweep precision and the whole `(γ, p)` grid before any
    /// arena is built: a single `NaN` grid value would otherwise ride
    /// through model instantiation into the Dinkelbach iteration, where it
    /// surfaces (at best) as a confusing non-convergence error after real
    /// work was spent. The same helpers back the query service's request
    /// validation and the grid orchestrator's up-front spec check, so batch,
    /// daemon and sharded entry points reject bad inputs identically.
    ///
    /// # Errors
    ///
    /// [`SelfishMiningError::InvalidParameter`] naming the offending field.
    pub fn validate_grid(&self, gammas: &[f64], ps: &[f64]) -> Result<(), SelfishMiningError> {
        validate_epsilon(self.epsilon)?;
        for &gamma in gammas {
            validate_share("gamma", gamma)?;
        }
        for &p in ps {
            validate_share("p", p)?;
        }
        Ok(())
    }

    /// Builds each `(d, f)` family of the grid once; jobs share them
    /// read-only.
    fn build_families(&self) -> Result<Vec<ParametricModel>, SelfishMiningError> {
        self.attack_grid
            .iter()
            .map(|&(depth, forks)| ParametricModel::build(depth, forks, self.max_fork_length))
            .collect()
    }

    /// Builds one parametric family per `(d, f) × scenario` of the
    /// conformance grid, in output order: `(d, f)` outer (grid order),
    /// scenario inner ([`SweepConfig::scenarios`] order). This enumeration
    /// *is* the canonical family order of [`SweepConfig::run_conformance`]'s
    /// report — the grid orchestrator (`sm-grid`) re-derives per-point
    /// coordinates from the same indices, which is what lets its merged
    /// report line up with the single-process pass byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates the first model-construction error.
    pub fn build_scenario_families(&self) -> Result<Vec<ParametricModel>, SelfishMiningError> {
        self.attack_grid
            .iter()
            .flat_map(|&(depth, forks)| {
                self.scenarios.iter().map(move |&scenario| {
                    ParametricModel::build_scenario(scenario, depth, forks, self.max_fork_length)
                })
            })
            .collect()
    }

    /// Solves one `(scenario, d, f) × γ` curve with certificates and
    /// witnesses every point with the Monte-Carlo estimator.
    fn certify_curve(
        &self,
        family: &ParametricModel,
        gamma: f64,
        ps: &[f64],
        settings: &ConformanceSettings,
        parallelism: SolverParallelism,
    ) -> Result<Vec<ConformancePoint>, ConformanceError> {
        let solves = attack_curve_certified_with(
            family,
            gamma,
            ps,
            self.epsilon,
            self.warm_start,
            parallelism,
        )?;
        // The export reads only the family's shared skeleton — no per-(p, γ)
        // instantiation is needed.
        let export = StrategyExport::from_family(family);
        solves
            .iter()
            .map(|solve| certify_point(&export, solve, settings))
            .collect()
    }

    /// Runs one curve job to completion on the calling worker thread, with
    /// `parallelism` threads granted to the job's own solver sweeps.
    fn run_job(
        &self,
        job: &CurveJob,
        families: &[ParametricModel],
        gammas: &[f64],
        ps: &[f64],
        parallelism: SolverParallelism,
    ) -> CurveResult {
        match *job {
            CurveJob::Attack {
                config,
                gamma_index,
            } => attack_curve_with(
                &families[config],
                gammas[gamma_index],
                ps,
                self.epsilon,
                self.warm_start,
                parallelism,
            ),
            CurveJob::Baseline { gamma_index } => ps
                .iter()
                .map(|&p| {
                    SingleTreeAttack {
                        p,
                        gamma: gammas[gamma_index],
                        max_depth: self.single_tree_depth,
                        max_width: self.single_tree_width,
                    }
                    .analyse()
                    .map(|result| result.relative_revenue)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfish_mining::experiments::Figure2Sweep;

    fn small_config(workers: usize) -> SweepConfig {
        SweepConfig {
            attack_grid: vec![(1, 1), (2, 1)],
            epsilon: 5e-3,
            workers,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn engine_is_deterministic_across_worker_counts() {
        let gammas = [0.0, 0.5];
        let ps = [0.1, 0.2, 0.3];
        let one = small_config(1).run(&gammas, &ps).unwrap();
        let four = small_config(4).run(&gammas, &ps).unwrap();
        assert_eq!(one.len(), gammas.len() * ps.len());
        assert_eq!(one, four, "curve jobs are independent and deterministic");
    }

    #[test]
    fn engine_agrees_with_sequential_driver() {
        let config = small_config(2);
        let gammas = [0.5];
        let ps = [0.15, 0.3];
        let engine = config.run(&gammas, &ps).unwrap();
        let sweep = Figure2Sweep {
            attack_grid: config.attack_grid.clone(),
            epsilon: config.epsilon,
            ..Figure2Sweep::default()
        };
        let sequential = sweep.curve(0.5, &ps).unwrap();
        for (e, s) in engine.iter().zip(&sequential) {
            assert_eq!(e.p, s.p);
            assert_eq!(e.gamma, s.gamma);
            assert_eq!(e.honest_revenue, s.honest_revenue);
            assert_eq!(e.single_tree_revenue, s.single_tree_revenue);
            for (a, b) in e.attack_revenue.iter().zip(&s.attack_revenue) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "engine {a} vs sequential {b} at p = {}",
                    e.p
                );
            }
        }
    }

    #[test]
    fn warm_and_cold_sweeps_agree_within_epsilon() {
        let gammas = [0.25];
        let ps = [0.1, 0.2, 0.3];
        let warm = small_config(2).run(&gammas, &ps).unwrap();
        let cold = SweepConfig {
            warm_start: false,
            ..small_config(2)
        }
        .run(&gammas, &ps)
        .unwrap();
        for (w, c) in warm.iter().zip(&cold) {
            for (a, b) in w.attack_revenue.iter().zip(&c.attack_revenue) {
                assert!(
                    (a - b).abs() < 2.0 * 5e-3,
                    "warm {a} vs cold {b} at p = {}",
                    w.p
                );
            }
        }
    }

    #[test]
    fn masked_gamma_edges_run_through_the_engine() {
        // γ ∈ {0, 1} exercises the structurally-kept masked branches end to
        // end through instantiation, solving and baseline extraction.
        let points = small_config(2).run(&[0.0, 1.0], &[0.0, 0.3]).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            for &revenue in &point.attack_revenue {
                assert!((0.0..=1.0).contains(&revenue), "revenue {revenue}");
            }
            assert!(point.attack_revenue[1] >= point.honest_revenue - 5e-3);
        }
    }

    #[test]
    fn invalid_grid_surfaces_the_construction_error() {
        let config = SweepConfig {
            attack_grid: vec![(0, 1)],
            ..SweepConfig::default()
        };
        assert!(config.run(&[0.5], &[0.1]).is_err());
    }

    #[test]
    fn run_rejects_non_finite_epsilon_and_out_of_range_grids_up_front() {
        let expect_invalid = |result: Result<Vec<Figure2Point>, SelfishMiningError>,
                              expected: &'static str| {
            match result {
                Err(SelfishMiningError::InvalidParameter { name, .. }) => {
                    assert_eq!(name, expected)
                }
                other => panic!("expected InvalidParameter({expected}), got {other:?}"),
            }
        };
        for bad_epsilon in [f64::NAN, f64::INFINITY, 0.0, -1e-3] {
            let config = SweepConfig {
                epsilon: bad_epsilon,
                ..small_config(1)
            };
            expect_invalid(config.run(&[0.5], &[0.1]), "epsilon");
        }
        let config = small_config(1);
        for bad_share in [f64::NAN, f64::INFINITY, -0.1, 1.1] {
            expect_invalid(config.run(&[bad_share], &[0.1]), "gamma");
            expect_invalid(config.run(&[0.5], &[bad_share]), "p");
        }
    }

    #[test]
    fn conformance_pass_rejects_invalid_inputs_before_building_models() {
        // The (0, 1) grid would error during model construction; the NaN p
        // must win because validation runs first.
        let config = SweepConfig {
            attack_grid: vec![(0, 1)],
            ..SweepConfig::default()
        };
        match config.run_conformance(&[0.5], &[f64::NAN], &small_conformance_settings()) {
            Err(ConformanceError::Analysis(SelfishMiningError::InvalidParameter {
                name, ..
            })) => assert_eq!(name, "p"),
            other => panic!("expected InvalidParameter(p), got {other:?}"),
        }
        let config = SweepConfig {
            epsilon: f64::NAN,
            ..SweepConfig::default()
        };
        assert!(matches!(
            config.run_conformance(&[0.5], &[0.1], &small_conformance_settings()),
            Err(ConformanceError::Analysis(
                SelfishMiningError::InvalidParameter {
                    name: "epsilon",
                    ..
                }
            ))
        ));
    }

    fn small_conformance_settings() -> ConformanceSettings {
        ConformanceSettings {
            steps: 12_000,
            max_replicas: 12,
            tolerance: 8e-3,
            ..ConformanceSettings::default()
        }
    }

    #[test]
    fn conformance_pass_certifies_a_small_grid() {
        let config = SweepConfig {
            attack_grid: vec![(2, 1)],
            epsilon: 5e-3,
            workers: 2,
            ..SweepConfig::default()
        };
        let report = config
            .run_conformance(&[0.5], &[0.15, 0.3], &small_conformance_settings())
            .unwrap();
        assert_eq!(report.len(), 2);
        assert_eq!(report.points[0].p, 0.15);
        assert_eq!(report.points[1].p, 0.3);
        assert!(
            report.all_conform(),
            "violations: {:?}",
            report.violations()
        );
        assert!(report.sources_agree());
    }

    #[test]
    fn short_queue_conformance_sweep_is_bit_identical_across_budget_shapes() {
        // Regression for the nested-budget scheduler: a 2-curve-job
        // conformance sweep on an 8-thread budget (each job soaks up 4
        // intra-solve threads) must match the 2-thread (one thread per job)
        // and fully serial schedules bit for bit. The historical pool
        // spawned `min(workers, jobs)` threads, so the 8-budget run used to
        // leave 6 threads idle; now the surplus flows into the solves —
        // without being allowed to show up in the report.
        let run = |workers: usize| {
            SweepConfig {
                attack_grid: vec![(2, 1)],
                epsilon: 5e-3,
                workers,
                ..SweepConfig::default()
            }
            .run_conformance(&[0.0, 0.5], &[0.15, 0.3], &small_conformance_settings())
            .unwrap()
        };
        // 2 jobs (one per γ): compare the 8-thread budget schedule against
        // the 2-job and serial schedules.
        let eight = run(8);
        assert_eq!(eight.len(), 4);
        assert_eq!(eight, run(2), "8-thread budget must match 2-worker run");
        assert_eq!(eight, run(1), "8-thread budget must match serial run");
    }

    #[test]
    fn conformance_report_is_deterministic_across_worker_counts() {
        let report = |sweep_workers: usize, estimator_workers: usize| {
            SweepConfig {
                attack_grid: vec![(1, 1), (2, 1)],
                epsilon: 1e-2,
                workers: sweep_workers,
                ..SweepConfig::default()
            }
            .run_conformance(
                &[0.0, 1.0],
                &[0.1, 0.3],
                &ConformanceSettings {
                    steps: 5_000,
                    max_replicas: 8,
                    tolerance: 1e-2,
                    workers: estimator_workers,
                    ..ConformanceSettings::default()
                },
            )
            .unwrap()
        };
        let reference = report(1, 1);
        assert_eq!(reference.len(), 8);
        assert_eq!(
            reference,
            report(4, 2),
            "sweep/estimator pools must not affect the report"
        );
    }

    #[test]
    fn scenario_conformance_pass_orders_and_certifies_the_family() {
        let config = SweepConfig {
            attack_grid: vec![(2, 1)],
            scenarios: vec![
                AttackScenario::Optimal,
                AttackScenario::LeadStubborn,
                AttackScenario::HonestMining,
            ],
            epsilon: 5e-3,
            workers: 2,
            ..SweepConfig::default()
        };
        let report = config
            .run_conformance(&[0.5], &[0.3], &small_conformance_settings())
            .unwrap();
        assert_eq!(report.len(), 3);
        assert_eq!(report.points[0].scenario, "optimal");
        assert_eq!(report.points[1].scenario, "lead-stubborn");
        assert_eq!(report.points[2].scenario, "honest-mining");
        assert!(
            report.all_conform(),
            "violations: {:?}",
            report.violations()
        );
        // Restriction dominance on the certified brackets...
        assert!(
            report.points[1].certified_lower <= report.points[0].certified_upper + 1e-9,
            "lead-stubborn must not certify above the optimum"
        );
        // ...and the honest sanity anchor certifies the proportional share.
        assert!(
            (report.points[2].strategy_revenue - 0.3).abs() <= 5e-3,
            "honest-mining revenue {} should be p = 0.3",
            report.points[2].strategy_revenue
        );
        // Scenario jobs are deterministic across pool shapes too.
        let re_run = SweepConfig {
            workers: 1,
            ..config
        }
        .run_conformance(&[0.5], &[0.3], &small_conformance_settings())
        .unwrap();
        assert_eq!(report, re_run);
    }

    #[test]
    fn mixed_backend_conformance_batch_is_bit_identical_across_worker_counts() {
        // The backend × scenario matrix under every pool shape the CI and
        // the acceptance criteria exercise: sweep workers 1/2/4/8 (with the
        // estimator pool varied too) must produce byte-for-byte the same
        // report. Cheap backends keep the matrix affordable; the space-time
        // budget (vdfs = 1 < σ-capable depths) exercises the capped law.
        use selfish_mining::ConsensusBackend;
        let settings = ConformanceSettings {
            steps: 4_000,
            max_replicas: 8,
            tolerance: 1e-12, // never met: every run does the full budget
            backends: vec![
                ConsensusBackend::Bernoulli,
                ConsensusBackend::PoStake,
                ConsensusBackend::Vdf,
                ConsensusBackend::Post { vdfs: 1 },
            ],
            ..ConformanceSettings::default()
        };
        let run = |sweep_workers: usize, estimator_workers: usize| {
            SweepConfig {
                attack_grid: vec![(2, 1)],
                scenarios: vec![AttackScenario::Optimal, AttackScenario::HonestMining],
                epsilon: 1e-2,
                workers: sweep_workers,
                ..SweepConfig::default()
            }
            .run_conformance(
                &[0.5],
                &[0.1, 0.3],
                &ConformanceSettings {
                    workers: estimator_workers,
                    ..settings.clone()
                },
            )
            .unwrap()
        };
        let reference = run(1, 1);
        assert_eq!(reference.len(), 4);
        for point in &reference.points {
            assert_eq!(point.estimates.len(), 4);
            assert_eq!(point.estimates[1].backend, ConsensusBackend::PoStake);
        }
        for (sweep_workers, estimator_workers) in [(2, 2), (4, 1), (8, 4)] {
            assert_eq!(
                reference,
                run(sweep_workers, estimator_workers),
                "workers ({sweep_workers}, {estimator_workers}) changed the report"
            );
        }
    }

    #[test]
    fn empty_scenario_list_is_rejected() {
        let config = SweepConfig {
            attack_grid: vec![(1, 1)],
            scenarios: vec![],
            ..SweepConfig::default()
        };
        assert!(matches!(
            config.run_conformance(&[0.5], &[0.1], &small_conformance_settings()),
            Err(ConformanceError::InvalidConfig {
                name: "scenarios",
                ..
            })
        ));
    }

    #[test]
    fn conformance_pass_with_empty_p_grid_is_empty() {
        let config = SweepConfig {
            attack_grid: vec![(1, 1)],
            ..SweepConfig::default()
        };
        let report = config
            .run_conformance(&[0.5], &[], &small_conformance_settings())
            .unwrap();
        assert!(report.is_empty());
        assert!(report.all_conform());
    }
}
