//! Umbrella crate for the reproduction of *"Fully Automated Selfish Mining
//! Analysis in Efficient Proof Systems Blockchains"* (PODC 2024).
//!
//! This crate re-exports the workspace members under one roof so that the
//! examples and integration tests can depend on a single package:
//!
//! * [`linalg`] — dense/sparse linear algebra, LU and a simplex LP solver.
//! * [`markov`] — Markov-chain analysis (SCCs, stationary distributions,
//!   long-run averages, hitting analysis).
//! * [`mdp`] — finite MDPs and mean-payoff solvers.
//! * [`proofs`] — simulated efficient proof systems (PoW, PoStake, PoSpace,
//!   VDF, PoST) and the `(p, k)`-mining abstraction.
//! * [`chain`] — the discrete-time longest-chain blockchain simulator.
//! * [`selfish_mining`] — the paper's selfish-mining MDP, the Algorithm 1
//!   analysis procedure and the baselines.
//! * [`conformance`] — statistical conformance: parallel Monte-Carlo
//!   estimation of exported strategies and solver-vs-simulator
//!   certification.
//! * [`scheduler`] — the shared nested-budget job scheduler (outer fan-out
//!   plus intra-solve thread allowances) used by the conformance estimator,
//!   the sweep engine and the query service.
//! * [`sweep`] — the parallel `(p, γ)` sweep engine over the parametric
//!   transition arena (worker pool + warm-started solves).
//! * [`grid`] — the fault-tolerant sharded grid orchestrator: idempotent
//!   point-jobs with durable `sm-grid/v1` artifacts, bounded retry +
//!   backoff, checkpoint/resume and a deterministic merge byte-identical
//!   to the single-process conformance pass.
//! * [`service`] — the persistent certified-analysis query service: cached
//!   parametric arenas, memoized certified solves and a JSONL front end.
//! * [`audit`] — the independent static-analysis layer: certificate
//!   re-verification, arena invariant checks and the source lint.
//!
//! See `README.md` for a quickstart, `ARCHITECTURE.md` for the workspace
//! map and cross-cutting contracts, and `EXPERIMENTS.md` for the
//! reproduction of every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sm_audit as audit;
pub use sm_chain as chain;
pub use sm_conformance as conformance;
pub use sm_grid as grid;
pub use sm_linalg as linalg;
pub use sm_markov as markov;
pub use sm_mdp as mdp;
pub use sm_proofs as proofs;
pub use sm_scheduler as scheduler;
pub use sm_service as service;
pub use sm_sweep as sweep;

pub use selfish_mining;

/// Command-line plumbing shared by the example drivers.
pub mod cli {
    /// Extracts a `--threads N` / `--threads=N` flag from command-line
    /// arguments: the global thread budget for the sweep engine's nested
    /// scheduler (outer curve jobs plus intra-solve threads — see
    /// `sm_sweep::SweepConfig::workers`). Returns `None` when the flag is
    /// absent (callers default to `0`, i.e. auto-detection), so CI and
    /// local runs can pin the pool shape explicitly:
    ///
    /// ```text
    /// cargo run --release --example parameter_sweep -- --threads 4
    /// ```
    ///
    /// When the flag is repeated, the last occurrence wins — the usual
    /// command-line convention, which lets wrapper scripts append an
    /// override after a default (`--threads 4 ... --threads=8` is 8).
    ///
    /// # Errors
    ///
    /// Returns a usage message when any occurrence of the flag is missing a
    /// value or carries one that is not a positive integer.
    pub fn thread_budget<I>(args: I) -> Result<Option<usize>, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut budget = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let value = if arg == "--threads" {
                args.next()
                    .ok_or("--threads needs a value (e.g. --threads 4)")?
            } else if let Some(value) = arg.strip_prefix("--threads=") {
                value.to_string()
            } else {
                continue;
            };
            budget = Some(
                value
                    .parse::<usize>()
                    .ok()
                    .filter(|&threads| threads >= 1)
                    .ok_or(format!(
                        "--threads expects a positive integer, got {value:?}"
                    ))?,
            );
        }
        Ok(budget)
    }

    /// Extracts a `--backends LIST` / `--backends=LIST` flag from
    /// command-line arguments: the consensus backends a conformance run
    /// witnesses each grid point under (`sm_conformance::
    /// ConformanceSettings::backends`). `LIST` is either the word `all`
    /// (the full default family, `selfish_mining::ConsensusBackend::
    /// default_family`) or a comma-separated list of backend labels:
    ///
    /// ```text
    /// cargo run --release --example conformance -- reduced --backends all
    /// cargo run --release --example scenarios -- --backends bernoulli,postake,vdf
    /// ```
    ///
    /// Returns `None` when the flag is absent (callers keep the settings
    /// default). When the flag is repeated, the last occurrence wins, as
    /// with [`thread_budget`].
    ///
    /// # Errors
    ///
    /// Returns a usage message when any occurrence is missing a value or
    /// lists an unknown (or empty) backend label.
    pub fn backend_matrix<I>(
        args: I,
    ) -> Result<Option<Vec<selfish_mining::ConsensusBackend>>, String>
    where
        I: IntoIterator<Item = String>,
    {
        use selfish_mining::ConsensusBackend;
        let mut backends = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let value = if arg == "--backends" {
                args.next().ok_or(
                    "--backends needs a value (e.g. --backends bernoulli,vdf or --backends all)",
                )?
            } else if let Some(value) = arg.strip_prefix("--backends=") {
                value.to_string()
            } else {
                continue;
            };
            if value == "all" {
                backends = Some(ConsensusBackend::default_family());
                continue;
            }
            let parsed: Result<Vec<ConsensusBackend>, String> = value
                .split(',')
                .map(|label| {
                    let label = label.trim();
                    ConsensusBackend::from_label(label)
                        .ok_or_else(|| format!("--backends: unknown backend label {label:?}"))
                })
                .collect();
            backends = Some(parsed?);
        }
        Ok(backends)
    }

    #[cfg(test)]
    mod tests {
        use super::{backend_matrix, thread_budget};
        use selfish_mining::ConsensusBackend;

        fn strings(args: &[&str]) -> Vec<String> {
            args.iter().map(|s| s.to_string()).collect()
        }

        #[test]
        fn parses_both_flag_forms_and_absence() {
            assert_eq!(thread_budget(strings(&[])).unwrap(), None);
            assert_eq!(
                thread_budget(strings(&["reduced", "--threads", "4"])).unwrap(),
                Some(4)
            );
            assert_eq!(
                thread_budget(strings(&["--threads=8", "reduced"])).unwrap(),
                Some(8)
            );
        }

        #[test]
        fn rejects_missing_or_malformed_values() {
            assert!(thread_budget(strings(&["--threads"])).is_err());
            assert!(thread_budget(strings(&["--threads", "zero"])).is_err());
            assert!(thread_budget(strings(&["--threads", "0"])).is_err());
        }

        #[test]
        fn last_occurrence_wins_across_both_spellings() {
            assert_eq!(
                thread_budget(strings(&["--threads", "4", "--threads", "8"])).unwrap(),
                Some(8)
            );
            assert_eq!(
                thread_budget(strings(&["--threads=4", "reduced", "--threads", "2"])).unwrap(),
                Some(2)
            );
            assert_eq!(
                thread_budget(strings(&["--threads", "2", "--threads=6"])).unwrap(),
                Some(6)
            );
            // A malformed occurrence is a usage error even when a later
            // occurrence would be valid: silent recovery would hide typos.
            assert!(thread_budget(strings(&["--threads", "x", "--threads", "4"])).is_err());
        }

        #[test]
        fn backend_matrix_parses_lists_and_the_all_family() {
            assert_eq!(backend_matrix(strings(&[])).unwrap(), None);
            assert_eq!(
                backend_matrix(strings(&[
                    "reduced",
                    "--backends",
                    "bernoulli,postake , vdf"
                ]))
                .unwrap(),
                Some(vec![
                    ConsensusBackend::Bernoulli,
                    ConsensusBackend::PoStake,
                    ConsensusBackend::Vdf,
                ])
            );
            assert_eq!(
                backend_matrix(strings(&["--backends=post(3)"])).unwrap(),
                Some(vec![ConsensusBackend::Post { vdfs: 3 }])
            );
            assert_eq!(
                backend_matrix(strings(&["--backends", "all"])).unwrap(),
                Some(ConsensusBackend::default_family())
            );
            // Last occurrence wins across both spellings.
            assert_eq!(
                backend_matrix(strings(&["--backends", "all", "--backends=pow-lottery"])).unwrap(),
                Some(vec![ConsensusBackend::PowLottery])
            );
        }

        #[test]
        fn backend_matrix_rejects_missing_unknown_and_empty_values() {
            assert!(backend_matrix(strings(&["--backends"])).is_err());
            assert!(backend_matrix(strings(&["--backends", "quantum"])).is_err());
            assert!(backend_matrix(strings(&["--backends", ""])).is_err());
            assert!(backend_matrix(strings(&["--backends", "bernoulli,,vdf"])).is_err());
            // A malformed occurrence is a usage error even when a later
            // occurrence would be valid.
            assert!(backend_matrix(strings(&["--backends", "x", "--backends", "all"])).is_err());
        }
    }
}
