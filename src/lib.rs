//! Umbrella crate for the reproduction of *"Fully Automated Selfish Mining
//! Analysis in Efficient Proof Systems Blockchains"* (PODC 2024).
//!
//! This crate re-exports the workspace members under one roof so that the
//! examples and integration tests can depend on a single package:
//!
//! * [`linalg`] — dense/sparse linear algebra, LU and a simplex LP solver.
//! * [`markov`] — Markov-chain analysis (SCCs, stationary distributions,
//!   long-run averages, hitting analysis).
//! * [`mdp`] — finite MDPs and mean-payoff solvers.
//! * [`proofs`] — simulated efficient proof systems (PoW, PoStake, PoSpace,
//!   VDF, PoST) and the `(p, k)`-mining abstraction.
//! * [`chain`] — the discrete-time longest-chain blockchain simulator.
//! * [`selfish_mining`] — the paper's selfish-mining MDP, the Algorithm 1
//!   analysis procedure and the baselines.
//! * [`conformance`] — statistical conformance: parallel Monte-Carlo
//!   estimation of exported strategies and solver-vs-simulator
//!   certification.
//! * [`sweep`] — the parallel `(p, γ)` sweep engine over the parametric
//!   transition arena (worker pool + warm-started solves).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the reproduction
//! of every table and figure of the paper.

#![forbid(unsafe_code)]

pub use sm_chain as chain;
pub use sm_conformance as conformance;
pub use sm_linalg as linalg;
pub use sm_markov as markov;
pub use sm_mdp as mdp;
pub use sm_proofs as proofs;
pub use sm_sweep as sweep;

pub use selfish_mining;
